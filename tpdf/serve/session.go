package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/tpdf"
	"repro/tpdf/obs"
)

// maxSessionIterations is the engine horizon of a session: effectively
// unbounded, the session ends by draining at a barrier, not by exhausting
// iterations. Admission requires the Theorem 2 boundedness verdict, so a
// huge horizon never inflates ring capacities (bounded graphs have zero
// per-iteration token drift).
const maxSessionIterations = int64(1) << 62

// sessCmd is one client command delivered to the session's barrier hook at
// a quiescent transaction boundary.
type sessCmd struct {
	// params are parameter overrides to apply at the boundary.
	params map[string]int64
	// iters > 0 pumps that many graph iterations (transactions).
	iters int64
	// reply receives the session's total completed iteration count once
	// the command has taken effect (buffered; the hook never blocks on it).
	reply chan int64
}

// Session is one client's persistent streaming engine: a tpdf.Stream run
// parked at a transaction barrier between requests. Its Program is stamped
// from the tenant graph's shared CompiledGraph, so the session owns all of
// its mutable engine state (single-writer per session) while the compile
// product is shared fleet-wide.
//
// Lifecycle: Open (stamp + start, engine parks at the completed=0 barrier)
// → any number of Pump/Reconfigure commands, each taking effect at a
// quiescent barrier → Drain (clean stop at the next barrier, rings
// flushed into the final result) or hard cancellation after the drain
// deadline.
type Session struct {
	ID     string
	Tenant string

	compiled *tpdf.CompiledGraph
	params   map[string]int64

	cmds chan sessCmd
	// soft asks the barrier hook to stop at the next boundary; hard
	// cancels the engine outright (unparks ring waits) when the drain
	// deadline expires.
	soft       chan struct{}
	softOnce   sync.Once
	hardCtx    context.Context
	hardCancel context.CancelFunc

	done   chan struct{}
	result *tpdf.ExecResult
	runErr error

	completed atomic.Int64
	// sink token counters, parallel to sinkNames (nodes with no outgoing
	// edges): the per-session observable output of the count profile.
	sinkNames  []string
	sinkTokens []atomic.Int64

	// metrics and journal are the session's private observability surface:
	// the engine harvests into them at transaction barriers, /metrics and
	// the trace export read them. One registry per session, so series from
	// different engines never mix.
	metrics *obs.Registry
	journal *obs.Journal
}

// newSession stamps and starts a session. The engine goroutine runs until
// drain or hard cancellation; it parks (zero CPU) whenever no command is
// pending.
func newSession(id, tenant string, compiled *tpdf.CompiledGraph, params map[string]int64) *Session {
	hardCtx, hardCancel := context.WithCancel(context.Background())
	s := &Session{
		ID:         id,
		Tenant:     tenant,
		compiled:   compiled,
		params:     params,
		cmds:       make(chan sessCmd),
		soft:       make(chan struct{}),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
		done:       make(chan struct{}),
		metrics:    obs.NewRegistry(),
		journal:    obs.NewJournal(256),
	}
	g := compiled.Graph()
	out := make([]bool, len(g.Nodes))
	for _, e := range g.Edges {
		out[e.Src] = true
	}
	for ni, n := range g.Nodes {
		if !out[ni] {
			s.sinkNames = append(s.sinkNames, n.Name)
		}
	}
	s.sinkTokens = make([]atomic.Int64, len(s.sinkNames))
	go s.run()
	return s
}

// behaviors implements the count profile: every sink node counts the
// tokens it consumes (per session, read back by Stats and pump replies);
// all other nodes stay token-only, which the engine executes without even
// materializing a firing context. The profile is graph-agnostic — it works
// for any admissible graph — and deterministic, so a session on a shared
// compile product is byte-identical to one on a fresh compile.
func (s *Session) behaviors() map[string]tpdf.Behavior {
	b := make(map[string]tpdf.Behavior, len(s.sinkNames))
	for i, name := range s.sinkNames {
		ctr := &s.sinkTokens[i]
		b[name] = func(f *tpdf.Firing) error {
			n := 0
			for _, vals := range f.In {
				n += len(vals)
			}
			ctr.Add(int64(n))
			return nil
		}
	}
	return b
}

func (s *Session) run() {
	defer close(s.done)
	res, err := tpdf.Stream(s.compiled.Graph(), s.behaviors(),
		tpdf.WithCompiled(s.compiled),
		tpdf.WithParams(s.params),
		tpdf.WithIterations(maxSessionIterations),
		tpdf.WithContext(s.hardCtx),
		tpdf.WithBarrier(s.barrier()),
		tpdf.WithMetrics(s.metrics),
		tpdf.WithTraceJournal(s.journal),
	)
	s.result, s.runErr = res, err
}

// barrier builds the session's transaction-boundary command loop. It runs
// on the engine's main goroutine: between pumps it blocks here (counted as
// boundary work, so the stall watchdog stays quiet) and every command takes
// effect only at this quiescent point — the paper's transaction rule, bent
// into a server's request loop.
func (s *Session) barrier() func(int64) (map[string]int64, bool) {
	remaining := int64(0)
	var reply chan int64
	var pending map[string]int64
	finish := func(completed int64) {
		if reply != nil {
			reply <- completed
			reply = nil
		}
	}
	return func(completed int64) (map[string]int64, bool) {
		s.completed.Store(completed)
		if remaining > 0 {
			// Mid-pump boundary: keep going unless a drain arrived, in
			// which case stop here — a pump is not a critical section,
			// every boundary is a legal stopping point.
			select {
			case <-s.soft:
				finish(completed)
				return nil, true
			case <-s.hardCtx.Done():
				finish(completed)
				return nil, true
			default:
			}
			remaining--
			if remaining > 0 {
				return nil, false
			}
		}
		finish(completed)
		for {
			select {
			case cmd := <-s.cmds:
				if len(cmd.params) > 0 {
					if pending == nil {
						pending = map[string]int64{}
					}
					for k, v := range cmd.params {
						pending[k] = v
					}
				}
				if cmd.iters > 0 {
					remaining = cmd.iters
					reply = cmd.reply
					p := pending
					pending = nil
					return p, false
				}
				// Pure reconfigure: acknowledged now, applied together
				// with the next pump's first iteration.
				if cmd.reply != nil {
					cmd.reply <- completed
				}
			case <-s.soft:
				return pending, true
			case <-s.hardCtx.Done():
				return nil, true
			}
		}
	}
}

// send delivers one command to the barrier hook and waits for its ack.
func (s *Session) send(ctx context.Context, cmd sessCmd) (int64, error) {
	cmd.reply = make(chan int64, 1)
	select {
	case s.cmds <- cmd:
	case <-s.done:
		return s.completed.Load(), s.exitErr()
	case <-ctx.Done():
		return s.completed.Load(), ctx.Err()
	}
	select {
	case n := <-cmd.reply:
		return n, nil
	case <-s.done:
		return s.completed.Load(), s.exitErr()
	case <-ctx.Done():
		// The engine keeps pumping; only this waiter gives up.
		return s.completed.Load(), ctx.Err()
	}
}

// Pump runs iters graph iterations (transactions) through the parked
// engine, optionally applying parameter overrides at the first boundary,
// and returns the session's total completed iteration count afterwards.
func (s *Session) Pump(ctx context.Context, iters int64, params map[string]int64) (int64, error) {
	if iters <= 0 {
		return s.completed.Load(), fmt.Errorf("serve: pump iterations must be >= 1")
	}
	return s.send(ctx, sessCmd{iters: iters, params: params})
}

// Reconfigure stages parameter overrides; they take effect at the boundary
// opening the next pumped iteration, per the transaction semantics.
func (s *Session) Reconfigure(ctx context.Context, params map[string]int64) error {
	if len(params) == 0 {
		return nil
	}
	_, err := s.send(ctx, sessCmd{params: params})
	return err
}

// Drain stops the session cleanly at the next transaction barrier: parked
// actors exit, leftover tokens are flushed into the final result. If the
// context expires first (the bounded drain deadline), the engine is
// cancelled outright. Drain is idempotent and always waits for the engine
// goroutine to exit before returning.
func (s *Session) Drain(ctx context.Context) (*tpdf.ExecResult, error) {
	s.softOnce.Do(func() { close(s.soft) })
	select {
	case <-s.done:
	case <-ctx.Done():
		s.hardCancel()
		<-s.done
	}
	return s.result, s.runErr
}

// exitErr is the error a command should report after the engine exited: the
// run error if the engine failed, or a closed-session error after a clean
// drain.
func (s *Session) exitErr() error {
	if s.runErr != nil {
		return fmt.Errorf("serve: session %s engine failed: %w", s.ID, s.runErr)
	}
	return fmt.Errorf("%w: session %s", ErrClosed, s.ID)
}

// Completed returns the session's total completed iteration count.
func (s *Session) Completed() int64 { return s.completed.Load() }

// Metrics is the session's private observability registry; the engine
// refreshes it at every transaction barrier.
func (s *Session) Metrics() *obs.Registry { return s.metrics }

// TraceJournal is the session's bounded transaction-trace journal.
func (s *Session) TraceJournal() *obs.Journal { return s.journal }

// Graph names the session's graph (a label in the metrics exposition).
func (s *Session) Graph() string { return s.compiled.Graph().Name }

// SinkTokens reports tokens consumed per sink node so far.
func (s *Session) SinkTokens() map[string]int64 {
	out := make(map[string]int64, len(s.sinkNames))
	for i, name := range s.sinkNames {
		out[name] = s.sinkTokens[i].Load()
	}
	return out
}
