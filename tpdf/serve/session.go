package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/tpdf"
	"repro/tpdf/obs"
)

// maxSessionIterations is the engine horizon of a session: effectively
// unbounded, the session ends by draining at a barrier, not by exhausting
// iterations. Admission requires the Theorem 2 boundedness verdict, so a
// huge horizon never inflates ring capacities (bounded graphs have zero
// per-iteration token drift).
const maxSessionIterations = int64(1) << 62

// SessionState is a session's supervision state, readable via
// Session.State and exported per session on /metrics.
type SessionState int32

const (
	// StateRunning: the engine is live (parked at a barrier or pumping).
	StateRunning SessionState = iota
	// StateRecovering: the engine crashed on a behavior panic and the
	// supervisor is backing off before restarting it from the last barrier
	// checkpoint. Client commands queue transparently meanwhile.
	StateRecovering
	// StateFailed: the engine is gone for good — restart budget exhausted,
	// a non-recoverable error, or hard cancellation. Commands answer the
	// run error.
	StateFailed
	// StateDrained: the session stopped cleanly at a transaction barrier.
	StateDrained
)

func (s SessionState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateRecovering:
		return "recovering"
	case StateFailed:
		return "failed"
	case StateDrained:
		return "drained"
	default:
		return "unknown"
	}
}

// restartPolicy is the supervisor's restart budget, derived from Config.
type restartPolicy struct {
	maxRestarts int
	backoff     time.Duration
	maxBackoff  time.Duration
}

// fleetCounters aggregates fault-tolerance events across the fleet; the
// manager owns one and every session bumps it alongside its own counters.
type fleetCounters struct {
	panics       atomic.Int64
	restarts     atomic.Int64
	rebindAborts atomic.Int64
}

// sessCmd is one client command delivered to the session's barrier hook at
// a quiescent transaction boundary.
type sessCmd struct {
	// params are parameter overrides to apply at the boundary.
	params map[string]int64
	// iters > 0 pumps that many graph iterations (transactions).
	iters int64
	// reply receives the command's acknowledgement once it has taken
	// effect (buffered; the hook never blocks on it).
	reply chan pumpAck
}

// pumpAck is the barrier hook's answer to one command: the session's total
// completed iteration count, plus a non-nil err wrapping ErrNotDurable
// when the durable flush covering the pump failed — the iterations ran,
// but the client must not treat them as crash-safe.
type pumpAck struct {
	completed int64
	err       error
}

// Session is one client's persistent streaming engine: a tpdf.Stream run
// parked at a transaction barrier between requests. Its Program is stamped
// from the tenant graph's shared CompiledGraph, so the session owns all of
// its mutable engine state (single-writer per session) while the compile
// product is shared fleet-wide.
//
// Lifecycle: Open (stamp + start, engine parks at the completed=0 barrier)
// → any number of Pump/Reconfigure commands, each taking effect at a
// quiescent barrier → Drain (clean stop at the next barrier, rings
// flushed into the final result) or hard cancellation after the drain
// deadline.
//
// The session is supervised: the engine checkpoints at every transaction
// barrier, a behavior panic tears down only the in-flight transaction, and
// the supervisor restarts the engine from the last checkpoint (bounded
// retries, exponential backoff with deterministic jitter). A panic in one
// session never touches the process or any other session — the engine
// recovers it on the actor goroutine and returns it as an error value.
type Session struct {
	ID     string
	Tenant string

	compiled *tpdf.CompiledGraph
	params   map[string]int64

	cmds chan sessCmd
	// soft asks the barrier hook to stop at the next boundary; hard
	// cancels the engine outright (unparks ring waits) when the drain
	// deadline expires.
	soft       chan struct{}
	softOnce   sync.Once
	hardCtx    context.Context
	hardCancel context.CancelFunc

	done   chan struct{}
	result *tpdf.ExecResult
	runErr error

	completed atomic.Int64
	// sink token counters, parallel to sinkNames (nodes with no outgoing
	// edges): the per-session observable output of the count profile.
	sinkNames  []string
	sinkTokens []atomic.Int64

	// Supervision state. The barrier-hook fields (pumpRemaining,
	// pumpReply, pumpPending) live on the session rather than in a
	// closure so an in-flight pump survives an engine restart: the hook
	// runs on the supervisor goroutine (tpdf.Stream is synchronous), so
	// one goroutine owns them across engine incarnations.
	state         atomic.Int32
	restarts      atomic.Int64
	panics        atomic.Int64
	rebindAborts  atomic.Int64
	policy        restartPolicy
	fleet         *fleetCounters
	faults        *faultinject.Plan
	pumpRemaining int64
	pumpReply     chan pumpAck
	pumpPending   map[string]int64

	// ckptArena holds the newest barrier checkpoint (the engine's sink
	// copies into it at every capture); snapSinks is the matching sink
	// counter snapshot riding in Checkpoint.User. ckptOK arms WithResume.
	ckptArena *tpdf.Checkpoint
	snapSinks []int64
	ckptOK    bool

	// persister streams entry checkpoints to the durable snapshot store
	// (nil when the server runs without -data-dir). resumeFirst makes the
	// first engine incarnation resume from ckptArena — set when the session
	// was re-opened from a durable snapshot at cold start.
	persister   *tpdf.Persister
	resumeFirst bool

	// metrics and journal are the session's private observability surface:
	// the engine harvests into them at transaction barriers, /metrics and
	// the trace export read them. One registry per session, so series from
	// different engines never mix.
	metrics *obs.Registry
	journal *obs.Journal
}

// durableEnv is the manager's durability context handed to each session:
// the shared snapshot store, the persistence cadence, and the fleet-wide
// durability counters every persist event bumps.
type durableEnv struct {
	store    *tpdf.SnapshotStore
	every    int
	counters *durableCounters
}

// newSession stamps and starts a session. The supervisor goroutine runs
// engine incarnations until drain, failure or hard cancellation; the
// engine parks (zero CPU) whenever no command is pending. A non-nil dur
// arms durable checkpoint persistence; a non-nil resume seeds the session
// from a durable snapshot's checkpoint — the first engine incarnation
// resumes there instead of starting fresh.
func newSession(id, tenant string, compiled *tpdf.CompiledGraph, params map[string]int64,
	chaos *ChaosSpec, policy restartPolicy, fleet *fleetCounters,
	dur *durableEnv, resume *tpdf.Checkpoint) (*Session, error) {
	hardCtx, hardCancel := context.WithCancel(context.Background())
	s := &Session{
		ID:         id,
		Tenant:     tenant,
		compiled:   compiled,
		params:     params,
		cmds:       make(chan sessCmd),
		soft:       make(chan struct{}),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
		done:       make(chan struct{}),
		policy:     policy,
		fleet:      fleet,
		ckptArena:  &tpdf.Checkpoint{},
		metrics:    obs.NewRegistry(),
		journal:    obs.NewJournal(256),
	}
	g := compiled.Graph()
	out := make([]bool, len(g.Nodes))
	for _, e := range g.Edges {
		out[e.Src] = true
	}
	for ni, n := range g.Nodes {
		if !out[ni] {
			s.sinkNames = append(s.sinkNames, n.Name)
		}
	}
	s.sinkTokens = make([]atomic.Int64, len(s.sinkNames))
	s.snapSinks = make([]int64, len(s.sinkNames))
	if chaos != nil {
		s.faults = chaos.plan(s.sinkNames)
	}
	if resume != nil {
		resume.CopyInto(s.ckptArena)
		s.ckptOK = true
		s.resumeFirst = true
		s.completed.Store(resume.Completed)
		// Seed the sink counters from the snapshot so stats are correct
		// before the engine's own RestoreUser runs at resume.
		s.restoreSinks(resume.User)
		s.journal.Record(obs.Event{Kind: obs.EvRecover, Completed: resume.Completed})
	}
	if dur != nil && dur.store != nil {
		p, err := dur.store.Persister(id, g, tpdf.PersistOptions{
			Tenant: tenant,
			Every:  dur.every,
			OnPersist: func(info tpdf.PersistInfo) {
				if info.Err != nil {
					dur.counters.persistErrs.Add(1)
					s.journal.Record(obs.Event{Kind: obs.EvPersist,
						Completed: info.Completed, DurNs: int64(info.Dur), Detail: info.Err.Error()})
					return
				}
				dur.counters.snapshots.Add(1)
				dur.counters.bytes.Add(int64(info.Bytes))
				dur.counters.lastSize.Store(int64(info.Bytes))
				dur.counters.persistLatency.Observe(info.Dur)
				s.journal.Record(obs.Event{Kind: obs.EvPersist,
					Completed: info.Completed, DurNs: int64(info.Dur)})
			},
		})
		if err != nil {
			hardCancel()
			return nil, fmt.Errorf("serve: session %s: durable store: %w", id, err)
		}
		s.persister = p
	}
	go s.run()
	return s, nil
}

// behaviors implements the count profile: every sink node counts the
// tokens it consumes (per session, read back by Stats and pump replies);
// all other nodes stay token-only, which the engine executes without even
// materializing a firing context. The profile is graph-agnostic — it works
// for any admissible graph — and deterministic, so a session on a shared
// compile product is byte-identical to one on a fresh compile.
func (s *Session) behaviors() map[string]tpdf.Behavior {
	b := make(map[string]tpdf.Behavior, len(s.sinkNames))
	for i, name := range s.sinkNames {
		ctr := &s.sinkTokens[i]
		b[name] = func(f *tpdf.Firing) error {
			n := 0
			for _, vals := range f.In {
				n += len(vals)
			}
			ctr.Add(int64(n))
			return nil
		}
	}
	return b
}

// keepCheckpoint is the session's CheckpointSink: copy the engine's arena
// into the session's (slice-reusing, so warm captures stay allocation
// free) and mark resume as possible.
func (s *Session) keepCheckpoint(ck *tpdf.Checkpoint) {
	ck.CopyInto(s.ckptArena)
	s.ckptOK = true
}

// snapshotSinks / restoreSinks carry the sink counters inside each
// checkpoint, so a rollback discards exactly the tokens of the aborted
// transaction. The snapshot slice is reused: only the newest checkpoint is
// ever restored, and arena and slice are rewritten at the same barrier.
func (s *Session) snapshotSinks() any {
	for i := range s.sinkTokens {
		s.snapSinks[i] = s.sinkTokens[i].Load()
	}
	return s.snapSinks
}

func (s *Session) restoreSinks(u any) {
	vals, ok := u.([]int64)
	if !ok {
		return
	}
	for i := range s.sinkTokens {
		s.sinkTokens[i].Store(vals[i])
	}
}

// onRebindAbort makes rejected reconfigurations non-fatal: the engine
// rolled the valuation back and keeps running under the previous
// parameters; the session and fleet just count the event (the engine
// already journaled it).
func (s *Session) onRebindAbort(error) {
	s.rebindAborts.Add(1)
	s.fleet.rebindAborts.Add(1)
}

// runEngine runs one engine incarnation; resume rehydrates it from the
// last barrier checkpoint. PanicRetries stays 0: recovery policy
// (budget, backoff) belongs to the supervisor, not the engine.
func (s *Session) runEngine(resume bool) (*tpdf.ExecResult, error) {
	opts := []tpdf.Option{
		tpdf.WithCompiled(s.compiled),
		tpdf.WithParams(s.params),
		tpdf.WithIterations(maxSessionIterations),
		tpdf.WithContext(s.hardCtx),
		tpdf.WithBarrier(s.barrierHook),
		tpdf.WithMetrics(s.metrics),
		tpdf.WithTraceJournal(s.journal),
		tpdf.WithCheckpoints(s.keepCheckpoint),
		tpdf.WithUserState(s.snapshotSinks, s.restoreSinks),
		tpdf.WithRebindAbortHandler(s.onRebindAbort),
	}
	if s.faults != nil {
		opts = append(opts, tpdf.WithFaultPlan(s.faults))
	}
	if s.persister != nil {
		// Entry captures stream to the background writer; a pump ack
		// flushes before replying (finishPump), so acked work is always
		// covered by a durable cut.
		opts = append(opts, tpdf.WithDurableCheckpoints(s.persister))
	}
	if resume {
		opts = append(opts, tpdf.WithResume(s.ckptArena))
	}
	return tpdf.Stream(s.compiled.Graph(), s.behaviors(), opts...)
}

// restartBackoff is the supervisor's wait before restart attempt n:
// exponential from the policy base, capped, with deterministic jitter in
// [d/2, d) derived from the session ID — sessions crashing together do
// not restart together, and a test re-running the same fleet sees the
// same schedule.
func (s *Session) restartBackoff(attempt int) time.Duration {
	d := s.policy.backoff << uint(attempt)
	if d > s.policy.maxBackoff || d <= 0 {
		d = s.policy.maxBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", s.ID, attempt)
	return d/2 + time.Duration(uint64(d/2)*(h.Sum64()%1024)/1024)
}

// run is the session's supervisor: it runs engine incarnations until the
// session drains, fails, or exhausts its restart budget. Only behavior
// panics are recoverable — the engine isolates them to an error value and
// the checkpoint names the barrier to restart from; every other error
// (cancellation, watchdog stalls, admission-time bugs) fails the session.
func (s *Session) run() {
	defer close(s.done)
	// Final durable snapshot (LIFO: this runs before done closes): once
	// Drain returns, the session's last consistent state is on disk — a
	// graceful restart neither replays nor loses work. The engine is gone
	// by now, so offering the arena races nothing.
	defer func() {
		if s.persister == nil {
			return
		}
		if s.ckptOK {
			s.persister.Offer(s.ckptArena)
		}
		s.persister.Close() //nolint:errcheck // counted via OnPersist
	}()
	attempt := 0
	resume := s.resumeFirst
	for {
		res, err := s.runEngine(resume)
		if err == nil {
			s.result = res
			s.state.Store(int32(StateDrained))
			return
		}
		var pe *tpdf.BehaviorPanicError
		recoverable := errors.As(err, &pe)
		if recoverable {
			s.panics.Add(1)
			s.fleet.panics.Add(1)
		}
		if !recoverable || !s.ckptOK || attempt >= s.policy.maxRestarts {
			s.runErr = err
			s.state.Store(int32(StateFailed))
			return
		}
		s.state.Store(int32(StateRecovering))
		select {
		case <-time.After(s.restartBackoff(attempt)):
		case <-s.soft:
			// Drained while recovering: the last checkpoint is the
			// session's final consistent state; report it.
			s.result = s.ckptArena.Result()
			s.completed.Store(s.ckptArena.Completed)
			s.state.Store(int32(StateDrained))
			return
		case <-s.hardCtx.Done():
			s.runErr = err
			s.state.Store(int32(StateFailed))
			return
		}
		attempt++
		resume = true
		s.restarts.Add(1)
		s.fleet.restarts.Add(1)
		s.journal.Record(obs.Event{Kind: obs.EvRestore, Completed: s.ckptArena.Completed, Detail: pe.Node})
		s.state.Store(int32(StateRunning))
	}
}

// barrierHook is the session's transaction-boundary command loop. It runs
// on the supervisor goroutine inside tpdf.Stream: between pumps it blocks
// here (counted as boundary work, so the stall watchdog stays quiet) and
// every command takes effect only at this quiescent point — the paper's
// transaction rule, bent into a server's request loop. Its state lives on
// the session so an in-flight pump spans engine restarts: the engine
// resumes mid-pump exactly where the checkpoint was cut.
func (s *Session) barrierHook(completed int64) (map[string]int64, bool) {
	s.completed.Store(completed)
	if s.pumpRemaining > 0 {
		// Mid-pump boundary: keep going unless a drain arrived, in
		// which case stop here — a pump is not a critical section,
		// every boundary is a legal stopping point.
		select {
		case <-s.soft:
			s.finishPump(completed)
			return nil, true
		case <-s.hardCtx.Done():
			s.finishPump(completed)
			return nil, true
		default:
		}
		s.pumpRemaining--
		if s.pumpRemaining > 0 {
			return nil, false
		}
	}
	s.finishPump(completed)
	for {
		select {
		case cmd := <-s.cmds:
			if len(cmd.params) > 0 {
				if s.pumpPending == nil {
					s.pumpPending = map[string]int64{}
				}
				for k, v := range cmd.params {
					s.pumpPending[k] = v
				}
			}
			if cmd.iters > 0 {
				s.pumpRemaining = cmd.iters
				s.pumpReply = cmd.reply
				p := s.pumpPending
				s.pumpPending = nil
				return p, false
			}
			// Pure reconfigure: acknowledged now, applied together
			// with the next pump's first iteration.
			if cmd.reply != nil {
				cmd.reply <- pumpAck{completed: completed}
			}
		case <-s.soft:
			return s.pumpPending, true
		case <-s.hardCtx.Done():
			return nil, true
		}
	}
}

func (s *Session) finishPump(completed int64) {
	if s.pumpReply == nil {
		return
	}
	var err error
	if s.persister != nil {
		// Durability point: the entry capture at this boundary (which
		// covers every iteration being acknowledged) was offered before
		// this hook ran; flush it to disk before the ack leaves. One
		// fsync per pump, not per iteration. A failed flush fails the
		// pump — the engine state is fine and the session keeps running,
		// but the client must not be told the work is durable when it is
		// not (Config.DataDir promises acks only after the covering
		// checkpoint is fsynced).
		if ferr := s.persister.Flush(); ferr != nil {
			err = fmt.Errorf("%w: %v", ErrNotDurable, ferr)
		}
	}
	s.pumpReply <- pumpAck{completed: completed, err: err}
	s.pumpReply = nil
}

// send delivers one command to the barrier hook and waits for its ack.
// A session in recovery has no engine at a barrier, but the supervisor
// restarts one within its backoff budget; the command just queues.
func (s *Session) send(ctx context.Context, cmd sessCmd) (int64, error) {
	cmd.reply = make(chan pumpAck, 1)
	select {
	case s.cmds <- cmd:
	case <-s.done:
		return s.completed.Load(), s.exitErr()
	case <-ctx.Done():
		return s.completed.Load(), ctx.Err()
	}
	select {
	case a := <-cmd.reply:
		return a.completed, a.err
	case <-s.done:
		return s.completed.Load(), s.exitErr()
	case <-ctx.Done():
		// The engine keeps pumping; only this waiter gives up.
		return s.completed.Load(), ctx.Err()
	}
}

// Pump runs iters graph iterations (transactions) through the parked
// engine, optionally applying parameter overrides at the first boundary,
// and returns the session's total completed iteration count afterwards.
// On a durable session, an error wrapping ErrNotDurable means the
// iterations ran (the count is still returned) but the covering checkpoint
// could not be flushed — the work is not crash-safe.
func (s *Session) Pump(ctx context.Context, iters int64, params map[string]int64) (int64, error) {
	if iters <= 0 {
		return s.completed.Load(), fmt.Errorf("serve: pump iterations must be >= 1")
	}
	return s.send(ctx, sessCmd{iters: iters, params: params})
}

// Reconfigure stages parameter overrides; they take effect at the boundary
// opening the next pumped iteration, per the transaction semantics. An
// override rejected there (unbounded schedule, failed validation) aborts
// only that rebind: the engine keeps running under the previous
// parameters and the abort is counted on the session and the fleet.
func (s *Session) Reconfigure(ctx context.Context, params map[string]int64) error {
	if len(params) == 0 {
		return nil
	}
	_, err := s.send(ctx, sessCmd{params: params})
	return err
}

// Drain stops the session cleanly at the next transaction barrier: parked
// actors exit, leftover tokens are flushed into the final result. A
// session draining mid-recovery reports the state of its last checkpoint.
// If the context expires first (the bounded drain deadline), the engine is
// cancelled outright. Drain is idempotent and always waits for the engine
// goroutine to exit before returning.
func (s *Session) Drain(ctx context.Context) (*tpdf.ExecResult, error) {
	s.softOnce.Do(func() { close(s.soft) })
	select {
	case <-s.done:
	case <-ctx.Done():
		s.hardCancel()
		<-s.done
	}
	return s.result, s.runErr
}

// exitErr is the error a command should report after the engine exited: the
// run error if the engine failed, or a closed-session error after a clean
// drain.
func (s *Session) exitErr() error {
	if s.runErr != nil {
		return fmt.Errorf("serve: session %s engine failed: %w", s.ID, s.runErr)
	}
	return fmt.Errorf("%w: session %s", ErrClosed, s.ID)
}

// Completed returns the session's total completed iteration count.
func (s *Session) Completed() int64 { return s.completed.Load() }

// State returns the session's supervision state.
func (s *Session) State() SessionState { return SessionState(s.state.Load()) }

// Restarts counts engine restarts performed by the supervisor.
func (s *Session) Restarts() int64 { return s.restarts.Load() }

// Panics counts behavior panics the session's engines hit.
func (s *Session) Panics() int64 { return s.panics.Load() }

// RebindAborts counts reconfigurations rejected at barriers.
func (s *Session) RebindAborts() int64 { return s.rebindAborts.Load() }

// Metrics is the session's private observability registry; the engine
// refreshes it at every transaction barrier.
func (s *Session) Metrics() *obs.Registry { return s.metrics }

// TraceJournal is the session's bounded transaction-trace journal.
func (s *Session) TraceJournal() *obs.Journal { return s.journal }

// Graph names the session's graph (a label in the metrics exposition).
func (s *Session) Graph() string { return s.compiled.Graph().Name }

// SinkTokens reports tokens consumed per sink node so far.
func (s *Session) SinkTokens() map[string]int64 {
	out := make(map[string]int64, len(s.sinkNames))
	for i, name := range s.sinkNames {
		out[name] = s.sinkTokens[i].Load()
	}
	return out
}
