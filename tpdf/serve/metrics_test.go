package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/tpdf/obs"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, res.StatusCode)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body)
}

// TestMetricsExposition drives a session through open+pump and requires the
// /metrics text to parse as Prometheus exposition and to carry the fleet
// families, the per-endpoint latency histogram of the pump route, and the
// per-session barrier and ring-occupancy series the acceptance criteria
// name.
func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, Config{})

	var opened openResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		openRequest{Tenant: "acme", Graph: GraphSpec{Builtin: "fig2"}}, &opened); code != http.StatusCreated {
		t.Fatalf("open status = %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+opened.ID+"/pump",
		pumpRequest{Iterations: 3}, nil); code != http.StatusOK {
		t.Fatalf("pump status = %d", code)
	}

	text := scrape(t, ts.URL+"/metrics")
	n, err := obs.ValidateExposition(text)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	if n < 30 {
		t.Errorf("suspiciously few samples: %d", n)
	}

	for _, want := range []string{
		`tpdf_serve_sessions{state="open"} 1`,
		`tpdf_serve_sessions_total{state="opened"} 1`,
		`tpdf_serve_admission_queue_depth 0`,
		`tpdf_serve_draining 0`,
		`tpdf_serve_program_cache_events_total{event="compile"} 1`,
		`tpdf_serve_http_responses_total{code="200"}`,
		`tpdf_serve_request_seconds_bucket{endpoint="POST /v1/sessions/{id}/pump",le="+Inf"} 1`,
		`tpdf_session_completed_iterations{session="` + opened.ID + `",tenant="acme",graph="fig2"} 3`,
		`tpdf_session_barriers_total{session="` + opened.ID + `"`,
		`tpdf_session_ring_occupancy{session="` + opened.ID + `"`,
		`tpdf_session_ring_high_water{session="` + opened.ID + `"`,
		`tpdf_session_actor_firings_total{session="` + opened.ID + `"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The pump route histogram must have observed exactly the one pump.
	if strings.Count(text, `endpoint="POST /v1/sessions/{id}/pump"`) == 0 {
		t.Error("no pump-route latency series")
	}
}

// TestMetricsSessionSeriesTrackPump checks the barrier-harvest freshness
// contract at the HTTP surface: after another pump the session's completed
// and barrier series advance.
func TestMetricsSessionSeriesTrackPump(t *testing.T) {
	_, ts := testServer(t, Config{})

	var opened openResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		openRequest{Graph: GraphSpec{Builtin: "fig2"}}, &opened)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+opened.ID+"/pump", pumpRequest{Iterations: 2}, nil)
	before := scrape(t, ts.URL+"/metrics")
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+opened.ID+"/pump", pumpRequest{Iterations: 5}, nil)
	after := scrape(t, ts.URL+"/metrics")

	key := `tpdf_session_completed_iterations{session="` + opened.ID + `"`
	if !strings.Contains(before, key+`,tenant="default",graph="fig2"} 2`) {
		t.Errorf("first scrape should report 2 completed iterations:\n%s", grepLines(before, key))
	}
	if !strings.Contains(after, key+`,tenant="default",graph="fig2"} 7`) {
		t.Errorf("second scrape should report 7 completed iterations:\n%s", grepLines(after, key))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}

// TestHealthzDraining is the load-balancer contract: /healthz flips to 503
// "draining" once the manager begins draining, so no new work is routed to
// a server that is parking its sessions.
func TestHealthzDraining(t *testing.T) {
	s, ts := testServer(t, Config{})

	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", res.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Manager().Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", res.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatalf("decode healthz body: %v", err)
	}
	if body["status"] != "draining" {
		t.Fatalf("healthz body = %v, want status=draining", body)
	}
}

// TestCacheRejectedCounter fills a one-entry program cache and requires the
// refusal to surface both as a 429 and as the Rejected counter in /v1/stats.
func TestCacheRejectedCounter(t *testing.T) {
	_, ts := testServer(t, Config{MaxPrograms: 1})

	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		openRequest{Graph: GraphSpec{Builtin: "fig2"}}, nil); code != http.StatusCreated {
		t.Fatalf("first open status = %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		openRequest{Graph: GraphSpec{Builtin: "fig4a"}}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("second graph status = %d, want 422 (cache full wraps ErrBusy under admission)", code)
	}

	var st Stats
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Cache.Rejected != 1 {
		t.Errorf("cache rejected = %d, want 1 (stats %+v)", st.Cache.Rejected, st.Cache)
	}
	if st.Cache.Hits != 0 || st.Cache.Misses != 1 || st.Cache.Compiles != 1 {
		t.Errorf("cache counters off: %+v", st.Cache)
	}

	text := scrape(t, ts.URL+"/metrics")
	if !strings.Contains(text, `tpdf_serve_program_cache_events_total{event="rejection"} 1`) {
		t.Errorf("rejection not exposed:\n%s", grepLines(text, "program_cache"))
	}
}

// TestAdminListener checks that the opt-in admin surface serves pprof and a
// second /metrics copy on its own port, kept off the public listener.
func TestAdminListener(t *testing.T) {
	s, ts := testServer(t, Config{})

	// The public mux must NOT serve pprof.
	res, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("public pprof probe: %v", err)
	}
	res.Body.Close()
	if res.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable on the public listener")
	}

	addr, err := s.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start admin: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.admin.Shutdown(ctx) //nolint:errcheck // test cleanup
	})

	body := scrape(t, "http://"+addr+"/debug/pprof/cmdline")
	if body == "" {
		t.Error("pprof cmdline empty")
	}
	text := scrape(t, "http://"+addr+"/metrics")
	if _, err := obs.ValidateExposition(text); err != nil {
		t.Errorf("admin /metrics invalid: %v", err)
	}
}

// TestSessionTraceEndpoint exports a pumped session's journal as Chrome
// trace JSON and checks it parses and names the barrier spans.
func TestSessionTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})

	var opened openResponse
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		openRequest{Graph: GraphSpec{Builtin: "fig2"}}, &opened)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+opened.ID+"/pump", pumpRequest{Iterations: 2}, nil)

	raw := scrape(t, ts.URL+"/v1/sessions/"+opened.ID+"/trace")
	// Chrome trace JSON array form: every element is one trace event.
	var events []map[string]any
	if err := json.Unmarshal([]byte(raw), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]bool{}
	for _, ev := range events {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	if !names["run_start"] || !names["barrier"] {
		t.Errorf("trace missing run_start/barrier events: %v", names)
	}
}
