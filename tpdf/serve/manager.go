package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/tpdf"
	"repro/tpdf/obs"
)

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrBusy: the server is saturated (no session slot or batch worker
	// became free within the admission wait, the admission queue is full,
	// or the program cache is at capacity). HTTP 429.
	ErrBusy = errors.New("serve: busy")
	// ErrQuota: the tenant is at its session quota. HTTP 429.
	ErrQuota = errors.New("serve: tenant quota exceeded")
	// ErrShuttingDown: the server is draining. HTTP 503.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrNotAdmissible: static analysis refused the graph (inconsistent,
	// unsafe, deadlocked or unbounded — a session of it could not run in
	// bounded memory). HTTP 422.
	ErrNotAdmissible = errors.New("serve: graph not admissible")
	// ErrNotFound: unknown session ID. HTTP 404.
	ErrNotFound = errors.New("serve: no such session")
	// ErrClosed: the session was already drained. HTTP 409.
	ErrClosed = errors.New("serve: session closed")
	// ErrNotDurable: a pump ran to completion but the synchronous flush of
	// its covering checkpoint failed — the session keeps running, but the
	// completed work is not crash-safe. HTTP 500.
	ErrNotDurable = errors.New("serve: pump not durable")
)

// Config bounds the service. Every limit exists so that saturation turns
// into a rejected request instead of unbounded memory: slots bound live
// engines, the queue bounds waiting openers, quotas bound any one tenant,
// batch workers bound concurrent analysis jobs, and the program cache
// bounds distinct compiled graphs.
type Config struct {
	// MaxSessions bounds concurrently open sessions (default 256).
	MaxSessions int
	// MaxSessionsPerTenant bounds one tenant's share (default MaxSessions).
	MaxSessionsPerTenant int
	// AdmitWait is how long an opener may queue for a free slot before
	// being rejected with ErrBusy (default 100ms; 0 keeps the default,
	// negative disables queueing).
	AdmitWait time.Duration
	// MaxQueue bounds openers waiting for a slot (default MaxSessions).
	MaxQueue int
	// MaxPrograms bounds the compiled-program cache (default 1024).
	MaxPrograms int
	// BatchWorkers bounds concurrently executing batch (analyze/sweep)
	// requests; excess requests queue up to AdmitWait (default 2).
	BatchWorkers int
	// SweepParallelism is the worker-pool width a single sweep request may
	// use (default 1: batch concurrency comes from BatchWorkers).
	SweepParallelism int
	// DrainTimeout bounds graceful shutdown: sessions that have not
	// reached a barrier by then are cancelled (default 5s).
	DrainTimeout time.Duration
	// MaxRestarts bounds per-session engine restarts after behavior
	// panics (default 3; negative disables recovery — the first panic
	// fails the session).
	MaxRestarts int
	// RestartBackoff is the supervisor's initial restart delay (default
	// 10ms), doubled per consecutive attempt up to RestartMaxBackoff
	// (default 640ms), with deterministic per-session jitter.
	RestartBackoff    time.Duration
	RestartMaxBackoff time.Duration
	// EnableChaos accepts ChaosSpec fault-injection requests at session
	// open (the tpdf-serve -chaos flag). Off by default: a production
	// server refuses injected faults.
	EnableChaos bool
	// DataDir enables durable sessions: every session streams its barrier
	// checkpoints to a per-session snapshot store under this directory
	// (crash-safe tmp-write → fsync → rename), a pump is acknowledged only
	// after its covering checkpoint is fsynced (a failed flush fails the
	// pump with ErrNotDurable — the work ran but is reported non-durable),
	// and a restarted server recovers every session from its newest valid
	// snapshot. Empty (the default) keeps all checkpoints in memory.
	DataDir string
	// PersistEvery is the background persistence cadence: a snapshot write
	// is triggered every Nth barrier (default 1). Pump acks flush
	// synchronously regardless, so the cadence trades background I/O
	// against recovery staleness between acks, never against the acked-work
	// guarantee.
	PersistEvery int
	// KeepSnapshots bounds per-session snapshot retention (default 3;
	// older files are pruned after each successful write). More than one is
	// kept so a torn newest write falls back instead of losing the session.
	KeepSnapshots int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxSessionsPerTenant <= 0 {
		c.MaxSessionsPerTenant = c.MaxSessions
	}
	if c.AdmitWait == 0 {
		c.AdmitWait = 100 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxSessions
	}
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 1024
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = 2
	}
	if c.SweepParallelism <= 0 {
		c.SweepParallelism = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	if c.RestartMaxBackoff <= 0 {
		c.RestartMaxBackoff = 640 * time.Millisecond
	}
	if c.PersistEvery <= 0 {
		c.PersistEvery = 1
	}
	if c.KeepSnapshots <= 0 {
		c.KeepSnapshots = 3
	}
	return c
}

// policy renders the restart knobs for sessions (negative MaxRestarts
// means no recovery).
func (c Config) policy() restartPolicy {
	p := restartPolicy{
		maxRestarts: c.MaxRestarts,
		backoff:     c.RestartBackoff,
		maxBackoff:  c.RestartMaxBackoff,
	}
	if p.maxRestarts < 0 {
		p.maxRestarts = 0
	}
	return p
}

// Stats is the service-level counter snapshot exposed by /v1/stats.
type Stats struct {
	Sessions       int        `json:"sessions"`
	Tenants        int        `json:"tenants"`
	QueueDepth     int64      `json:"queue_depth"`
	Draining       bool       `json:"draining"`
	Opened         int64      `json:"opened"`
	Drained        int64      `json:"drained"`
	Failed         int64      `json:"failed"`
	RejectedBusy   int64      `json:"rejected_busy"`
	RejectedQuota  int64      `json:"rejected_quota"`
	RejectedGraph  int64      `json:"rejected_graph"`
	BatchJobs      int64      `json:"batch_jobs"`
	BatchRejected  int64      `json:"batch_rejected"`
	Cache          CacheStats `json:"cache"`
	IterationsLive int64      `json:"iterations_live"`
	// Fault-tolerance counters, summed over the fleet's lifetime:
	// behavior panics recovered into transaction aborts, supervisor
	// engine restarts, and reconfigurations rejected at barriers.
	Panics       int64 `json:"panics"`
	Restarts     int64 `json:"restarts"`
	RebindAborts int64 `json:"rebind_aborts"`
	// Recovering counts open sessions currently between engine
	// incarnations (crashed, waiting out the restart backoff).
	Recovering int `json:"recovering"`
	// Durable reports snapshot-store activity; nil when the server runs
	// without -data-dir.
	Durable *DurableStats `json:"durable,omitempty"`
	// Recovery reports cold-start recovery progress; nil when the server
	// runs without -data-dir.
	Recovery *RecoveryStats `json:"recovery,omitempty"`
}

// DurableStats is the snapshot-store counter snapshot.
type DurableStats struct {
	// Snapshots counts successful snapshot writes; PersistErrors failed
	// ones. Bytes is the cumulative encoded size, LastSnapshotBytes the
	// newest snapshot's size.
	Snapshots         int64 `json:"snapshots"`
	PersistErrors     int64 `json:"persist_errors"`
	Bytes             int64 `json:"bytes"`
	LastSnapshotBytes int64 `json:"last_snapshot_bytes"`
	// TornDiscarded counts snapshot files skipped as torn or corrupt
	// during recovery (each was a crash casualty; recovery fell back to an
	// older valid snapshot).
	TornDiscarded int64 `json:"torn_discarded"`
	// Recovered / RecoveryFailed count cold-start session recoveries.
	Recovered      int64 `json:"recovered"`
	RecoveryFailed int64 `json:"recovery_failed"`
	// Deleted counts snapshot sets removed after client session closes.
	Deleted int64 `json:"deleted"`
}

// RecoveryStats is the cold-start recovery progress /v1/stats reports
// while (and after) the server rebuilds its fleet from the snapshot store.
type RecoveryStats struct {
	// Active is true while recovery is still running (healthz answers 503
	// "recovering" meanwhile).
	Active bool `json:"active"`
	// Total is the number of sessions found in the store at boot; Pending
	// counts those not yet attempted.
	Total   int `json:"total"`
	Pending int `json:"pending"`
	// Recovered sessions are re-opened and resumed; Failed ones could not
	// be (Reasons explains each).
	Recovered int      `json:"recovered"`
	Failed    int      `json:"failed"`
	Reasons   []string `json:"reasons,omitempty"`
}

// durableCounters aggregates snapshot-store events across the fleet.
type durableCounters struct {
	snapshots      atomic.Int64
	persistErrs    atomic.Int64
	bytes          atomic.Int64
	lastSize       atomic.Int64
	torn           atomic.Int64
	recovered      atomic.Int64
	recoveryFailed atomic.Int64
	deleted        atomic.Int64
	persistLatency *obs.Histogram
}

func (d *durableCounters) stats() *DurableStats {
	return &DurableStats{
		Snapshots:         d.snapshots.Load(),
		PersistErrors:     d.persistErrs.Load(),
		Bytes:             d.bytes.Load(),
		LastSnapshotBytes: d.lastSize.Load(),
		TornDiscarded:     d.torn.Load(),
		Recovered:         d.recovered.Load(),
		RecoveryFailed:    d.recoveryFailed.Load(),
		Deleted:           d.deleted.Load(),
	}
}

// Manager owns the session fleet: admission, the shared program cache,
// per-tenant accounting and graceful drain.
type Manager struct {
	cfg   Config
	cache *ProgramCache

	slots  chan struct{}
	batch  chan struct{}
	queued atomic.Int64
	closed atomic.Bool

	mu        sync.Mutex
	sessions  map[string]*Session
	perTenant map[string]int
	nextID    atomic.Int64

	opened        atomic.Int64
	drained       atomic.Int64
	failed        atomic.Int64
	rejectedBusy  atomic.Int64
	rejectedQuota atomic.Int64
	rejectedGraph atomic.Int64
	batchJobs     atomic.Int64
	batchRejected atomic.Int64
	fleet         fleetCounters

	// Durable-session state: the snapshot store (nil without DataDir; a
	// failed open is stashed in storeErr and surfaced by Server.Start),
	// fleet-wide durability counters, and cold-start recovery progress.
	store      *tpdf.SnapshotStore
	storeErr   error
	durable    durableCounters
	recovering atomic.Bool
	recMu      sync.Mutex
	recovery   RecoveryStats
}

// NewManager builds a manager with the configured bounds.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:       cfg,
		cache:     NewProgramCache(cfg.MaxPrograms),
		slots:     make(chan struct{}, cfg.MaxSessions),
		batch:     make(chan struct{}, cfg.BatchWorkers),
		sessions:  map[string]*Session{},
		perTenant: map[string]int{},
	}
	m.durable.persistLatency = obs.NewLatencyHistogram()
	if cfg.DataDir != "" {
		m.store, m.storeErr = tpdf.OpenSnapshotStore(cfg.DataDir, cfg.KeepSnapshots)
		if m.storeErr == nil {
			m.storeErr = m.seedNextID()
		}
	}
	return m
}

// seedNextID raises the session-ID counter past every session directory
// already in the store — synchronously, before any Open can run. Cold-start
// recovery happens in the background while the listener already accepts
// requests, so without this an Open racing recovery could be handed an ID
// matching an on-disk session not yet recovered; the new session's
// persister would then write into (and keep-last-K pruning would
// eventually delete) the durable session's snapshots, silently losing
// acked state. Directories that later fail to recover count too: a fresh
// session must never share a snapshot directory with anything on disk.
func (m *Manager) seedNextID() error {
	ids, err := m.store.IDs()
	if err != nil {
		return err
	}
	var maxID int64
	for _, id := range ids {
		if n, perr := strconv.ParseInt(strings.TrimPrefix(id, "s"), 10, 64); perr == nil && n > maxID {
			maxID = n
		}
	}
	m.nextID.Store(maxID)
	return nil
}

// durableEnv renders the durability context sessions persist through; nil
// when the server runs without a data directory.
func (m *Manager) durableEnv() *durableEnv {
	if m.store == nil {
		return nil
	}
	return &durableEnv{store: m.store, every: m.cfg.PersistEvery, counters: &m.durable}
}

// Compile resolves a graph through the shared program cache (one compile +
// one analysis per distinct graph, fleet-wide).
func (m *Manager) Compile(g *tpdf.Graph) (*tpdf.CompiledGraph, *tpdf.Report, error) {
	return m.cache.Get(g)
}

// acquireSlot implements the bounded admission queue: an immediate slot if
// one is free, otherwise wait up to AdmitWait in a queue bounded by
// MaxQueue; saturation beyond that is an immediate ErrBusy.
func (m *Manager) acquireSlot(ctx context.Context) error {
	select {
	case m.slots <- struct{}{}:
		return nil
	default:
	}
	if m.cfg.AdmitWait < 0 {
		m.rejectedBusy.Add(1)
		return fmt.Errorf("%w: %d sessions open", ErrBusy, m.cfg.MaxSessions)
	}
	if m.queued.Add(1) > int64(m.cfg.MaxQueue) {
		m.queued.Add(-1)
		m.rejectedBusy.Add(1)
		return fmt.Errorf("%w: admission queue full", ErrBusy)
	}
	defer m.queued.Add(-1)
	t := time.NewTimer(m.cfg.AdmitWait)
	defer t.Stop()
	select {
	case m.slots <- struct{}{}:
		return nil
	case <-t.C:
		m.rejectedBusy.Add(1)
		return fmt.Errorf("%w: %d sessions open", ErrBusy, m.cfg.MaxSessions)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Open admits one session: tenant quota, bounded slot, cached compile,
// boundedness verdict, then stamp and start. On success the session is
// registered and its engine parks at the completed=0 barrier awaiting the
// first pump. A non-nil chaos spec (deterministic fault injection) is
// honored only when the server runs with Config.EnableChaos.
func (m *Manager) Open(ctx context.Context, tenant string, g *tpdf.Graph, params map[string]int64, chaos *ChaosSpec) (*Session, error) {
	if m.closed.Load() {
		return nil, ErrShuttingDown
	}
	if chaos != nil && !m.cfg.EnableChaos {
		return nil, fmt.Errorf("serve: chaos injection requested but the server runs without -chaos")
	}
	if tenant == "" {
		tenant = "default"
	}

	// Reserve the tenant quota before queueing for a slot so an over-quota
	// tenant cannot occupy the admission queue.
	m.mu.Lock()
	if m.perTenant[tenant] >= m.cfg.MaxSessionsPerTenant {
		m.mu.Unlock()
		m.rejectedQuota.Add(1)
		return nil, fmt.Errorf("%w: tenant %q at %d sessions", ErrQuota, tenant, m.cfg.MaxSessionsPerTenant)
	}
	m.perTenant[tenant]++
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		if m.perTenant[tenant]--; m.perTenant[tenant] == 0 {
			delete(m.perTenant, tenant)
		}
		m.mu.Unlock()
	}

	if err := m.acquireSlot(ctx); err != nil {
		release()
		return nil, err
	}

	compiled, report, err := m.cache.Get(g)
	if err != nil {
		<-m.slots
		release()
		m.rejectedGraph.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrNotAdmissible, err)
	}
	if report.Err != nil || !report.Bounded {
		<-m.slots
		release()
		m.rejectedGraph.Add(1)
		if report.Err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotAdmissible, report.Err)
		}
		return nil, fmt.Errorf("%w: graph %q is not bounded (Theorem 2)", ErrNotAdmissible, report.GraphName)
	}
	if m.closed.Load() {
		<-m.slots
		release()
		return nil, ErrShuttingDown
	}

	id := "s" + strconv.FormatInt(m.nextID.Add(1), 10)
	s, err := newSession(id, tenant, compiled, params, chaos, m.cfg.policy(), &m.fleet, m.durableEnv(), nil)
	if err != nil {
		<-m.slots
		release()
		return nil, err
	}
	m.mu.Lock()
	m.sessions[id] = s
	m.mu.Unlock()
	// Drain may have begun between the admission check above and the
	// registration: its ID snapshot would then miss this session, leaking
	// an engine (and its slot) past shutdown. Re-check after registering —
	// one side of the race always sees the other.
	if m.closed.Load() {
		dctx, cancel := context.WithTimeout(context.Background(), m.cfg.DrainTimeout)
		_, _ = m.Close(dctx, id)
		cancel()
		return nil, ErrShuttingDown
	}
	m.opened.Add(1)
	return s, nil
}

// Draining reports whether the manager has begun shutting down: new
// admissions are refused and /healthz answers 503 so load balancers stop
// routing here while in-flight sessions park and exit.
func (m *Manager) Draining() bool { return m.closed.Load() }

// QueueDepth is the number of openers currently waiting for a session slot.
func (m *Manager) QueueDepth() int64 { return m.queued.Load() }

// Sessions snapshots the open sessions in ID order (for the metrics
// exposition, which must emit stable series across scrapes).
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get looks a session up by ID.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s, nil
}

// Close drains one session (bounded by ctx) and frees its slot and quota.
// A client close is final: the session's durable snapshots are deleted, so
// a restarted server does not resurrect a session its client finished
// with. (Fleet Drain keeps snapshots — see closeSession.)
func (m *Manager) Close(ctx context.Context, id string) (*tpdf.ExecResult, error) {
	return m.closeSession(ctx, id, true)
}

// closeSession is the shared drain-one-session path. removeSnapshots
// distinguishes a client's DELETE (final — snapshots are disk leaks once
// the client has its result) from a graceful shutdown (snapshots are the
// whole point: the next boot resumes from them).
func (m *Manager) closeSession(ctx context.Context, id string, removeSnapshots bool) (*tpdf.ExecResult, error) {
	m.mu.Lock()
	s := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	res, err := s.Drain(ctx)
	m.mu.Lock()
	if m.perTenant[s.Tenant]--; m.perTenant[s.Tenant] == 0 {
		delete(m.perTenant, s.Tenant)
	}
	m.mu.Unlock()
	<-m.slots
	if err != nil {
		m.failed.Add(1)
	} else {
		m.drained.Add(1)
	}
	if removeSnapshots && m.store != nil {
		// Drain already closed the session's persister (final flush), so
		// no writer races the removal.
		if rerr := m.store.Remove(id); rerr == nil {
			m.durable.deleted.Add(1)
		}
	}
	return res, err
}

// Drain gracefully stops the whole fleet: no new sessions are admitted,
// and every open session is asked to park-and-exit at its next transaction
// barrier, with the manager's DrainTimeout (or the earlier ctx deadline)
// as the hard bound. It returns the first drain error, if any.
func (m *Manager) Drain(ctx context.Context) error {
	m.closed.Store(true)
	deadline := m.cfg.DrainTimeout
	dctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	m.mu.Lock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)

	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			// Keep snapshots: each session's drain path flushed a final
			// one, and the next boot resumes the fleet from them.
			_, errs[i] = m.closeSession(dctx, id, false)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
	}
	return nil
}

// RecoveryActive reports whether cold-start recovery is still running;
// /healthz answers 503 "recovering" while it is.
func (m *Manager) RecoveryActive() bool { return m.recovering.Load() }

// RecoveryStats snapshots recovery progress (zero value when the server
// runs without a data directory or recovery has not been started).
func (m *Manager) RecoveryStats() RecoveryStats {
	m.recMu.Lock()
	defer m.recMu.Unlock()
	out := m.recovery
	out.Reasons = append([]string(nil), m.recovery.Reasons...)
	return out
}

func (m *Manager) setRecovery(mut func(*RecoveryStats)) {
	m.recMu.Lock()
	mut(&m.recovery)
	m.recMu.Unlock()
}

// Recover rebuilds the fleet from the snapshot store: every session found
// on disk is re-compiled from its recorded graph text (through the shared
// program cache), re-admitted against quota and slots, and resumed from
// its newest valid snapshot — torn or corrupt newer files are skipped and
// counted. Sessions that cannot be recovered (invalid graph, no slot,
// unreadable snapshots) are left on disk and reported in RecoveryStats.
// Synchronous; Server.Start runs it in the background and gates /healthz
// on completion. Safe to call when no store is configured (no-op).
func (m *Manager) Recover(ctx context.Context) RecoveryStats {
	if m.store == nil {
		return RecoveryStats{}
	}
	m.recovering.Store(true)
	defer m.recovering.Store(false)

	ids, err := m.store.IDs()
	if err != nil {
		m.setRecovery(func(r *RecoveryStats) {
			*r = RecoveryStats{Reasons: []string{"store scan: " + err.Error()}}
		})
		return m.RecoveryStats()
	}
	m.setRecovery(func(r *RecoveryStats) {
		*r = RecoveryStats{Active: true, Total: len(ids), Pending: len(ids)}
	})
	for _, id := range ids {
		if ctx.Err() != nil || m.closed.Load() {
			break
		}
		m.mu.Lock()
		_, open := m.sessions[id]
		m.mu.Unlock()
		if open {
			// A session admitted after boot already owns this directory
			// (its persister wrote a snapshot before recovery reached it).
			// It is live, not crashed — nothing to recover.
			m.setRecovery(func(r *RecoveryStats) { r.Pending--; r.Total-- })
			continue
		}
		err := m.recoverSession(id)
		m.setRecovery(func(r *RecoveryStats) {
			r.Pending--
			if err != nil {
				r.Failed++
				r.Reasons = append(r.Reasons, id+": "+err.Error())
			} else {
				r.Recovered++
			}
		})
		if err != nil {
			m.durable.recoveryFailed.Add(1)
		} else {
			m.durable.recovered.Add(1)
		}
	}
	m.setRecovery(func(r *RecoveryStats) { r.Active = false })
	return m.RecoveryStats()
}

// recoverSession re-opens one session from its newest valid snapshot.
func (m *Manager) recoverSession(id string) error {
	m.mu.Lock()
	_, open := m.sessions[id]
	m.mu.Unlock()
	if open {
		return fmt.Errorf("already open")
	}
	snap, err := m.store.Load(id)
	if err != nil {
		return err
	}
	m.durable.torn.Add(int64(snap.Discarded))
	g, err := snap.Graph()
	if err != nil {
		return fmt.Errorf("graph text: %w", err)
	}
	compiled, report, err := m.cache.Get(g)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNotAdmissible, err)
	}
	if report.Err != nil || !report.Bounded {
		return fmt.Errorf("%w: graph %q no longer admissible", ErrNotAdmissible, report.GraphName)
	}
	tenant := snap.Tenant
	if tenant == "" {
		tenant = "default"
	}

	m.mu.Lock()
	if m.perTenant[tenant] >= m.cfg.MaxSessionsPerTenant {
		m.mu.Unlock()
		return fmt.Errorf("%w: tenant %q", ErrQuota, tenant)
	}
	m.perTenant[tenant]++
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		if m.perTenant[tenant]--; m.perTenant[tenant] == 0 {
			delete(m.perTenant, tenant)
		}
		m.mu.Unlock()
	}
	select {
	case m.slots <- struct{}{}:
	default:
		release()
		return fmt.Errorf("%w: no session slot", ErrBusy)
	}

	s, err := newSession(id, tenant, compiled, snap.Checkpoint.Params, nil,
		m.cfg.policy(), &m.fleet, m.durableEnv(), snap.Checkpoint)
	if err != nil {
		<-m.slots
		release()
		return err
	}
	m.mu.Lock()
	m.sessions[id] = s
	m.mu.Unlock()
	// No ID bookkeeping here: seedNextID already pushed the counter past
	// every on-disk session before the first Open could run.
	if m.closed.Load() {
		dctx, cancel := context.WithTimeout(context.Background(), m.cfg.DrainTimeout)
		_, _ = m.closeSession(dctx, id, false)
		cancel()
		return ErrShuttingDown
	}
	return nil
}

// AcquireBatch admits one batch (analyze/sweep) job against the bounded
// batch worker budget; the returned release must be called when the job
// ends. Saturation beyond AdmitWait is ErrBusy.
func (m *Manager) AcquireBatch(ctx context.Context) (func(), error) {
	if m.closed.Load() {
		return nil, ErrShuttingDown
	}
	select {
	case m.batch <- struct{}{}:
		m.batchJobs.Add(1)
		return func() { <-m.batch }, nil
	default:
	}
	t := time.NewTimer(max(m.cfg.AdmitWait, 0))
	defer t.Stop()
	select {
	case m.batch <- struct{}{}:
		m.batchJobs.Add(1)
		return func() { <-m.batch }, nil
	case <-t.C:
		m.batchRejected.Add(1)
		return nil, fmt.Errorf("%w: %d batch jobs in flight", ErrBusy, m.cfg.BatchWorkers)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats snapshots the fleet.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	n := len(m.sessions)
	t := len(m.perTenant)
	var live int64
	recovering := 0
	for _, s := range m.sessions {
		live += s.Completed()
		if s.State() == StateRecovering {
			recovering++
		}
	}
	m.mu.Unlock()
	var dur *DurableStats
	var rec *RecoveryStats
	if m.store != nil {
		dur = m.durable.stats()
		r := m.RecoveryStats()
		rec = &r
	}
	return Stats{
		Sessions:       n,
		Tenants:        t,
		QueueDepth:     m.queued.Load(),
		Draining:       m.closed.Load(),
		Opened:         m.opened.Load(),
		Drained:        m.drained.Load(),
		Failed:         m.failed.Load(),
		RejectedBusy:   m.rejectedBusy.Load(),
		RejectedQuota:  m.rejectedQuota.Load(),
		RejectedGraph:  m.rejectedGraph.Load(),
		BatchJobs:      m.batchJobs.Load(),
		BatchRejected:  m.batchRejected.Load(),
		Cache:          m.cache.Stats(),
		IterationsLive: live,
		Panics:         m.fleet.panics.Load(),
		Restarts:       m.fleet.restarts.Load(),
		RebindAborts:   m.fleet.rebindAborts.Load(),
		Recovering:     recovering,
		Durable:        dur,
		Recovery:       rec,
	}
}
