package serve

import (
	"time"

	"repro/internal/faultinject"
)

// ChaosSpec asks for a deterministic seeded fault schedule inside one
// session's engine: behavior panics, firing delays, and rebind rejections
// at pseudo-random (node, firing) sites drawn from Seed. It is accepted
// only when the server runs with Config.EnableChaos (the tpdf-serve
// -chaos flag) — a production server rejects it at open time. Identical
// specs produce identical schedules, so a failing soak run replays
// exactly.
type ChaosSpec struct {
	Seed int64 `json:"seed"`
	// Panics / Delays / RebindAborts are injection counts (how many of
	// each kind the schedule places).
	Panics       int `json:"panics"`
	Delays       int `json:"delays"`
	RebindAborts int `json:"rebind_aborts"`
	// MaxDelayMs bounds injected delays (default 1ms).
	MaxDelayMs int64 `json:"max_delay_ms,omitempty"`
	// Horizon is the firing-index window faults are placed in
	// (default 64: sites land within the first pumps).
	Horizon int64 `json:"horizon,omitempty"`
}

// plan materializes the schedule over the session's behavior-bearing
// nodes (the sinks — token-only nodes never run user code, so there is
// nothing to panic in).
func (c *ChaosSpec) plan(nodes []string) *faultinject.Plan {
	if len(nodes) == 0 {
		return nil
	}
	horizon := c.Horizon
	if horizon <= 0 {
		horizon = 64
	}
	return faultinject.Seeded(c.Seed, faultinject.Spec{
		Nodes:        nodes,
		Horizon:      horizon,
		Panics:       c.Panics,
		Delays:       c.Delays,
		RebindAborts: c.RebindAborts,
		MaxDelay:     time.Duration(c.MaxDelayMs) * time.Millisecond,
	})
}
