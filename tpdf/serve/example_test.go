package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/tpdf/serve"
)

// Example_sessionLifecycle is the tpdf-serve usage in miniature: boot a
// server, open a session of the built-in Fig. 2 graph over HTTP, pump it
// across two requests with a parameter change at a transaction boundary,
// and close it — the same request sequence the cmd/tpdf-serve doc comment
// shows with curl.
func Example_sessionLifecycle() {
	srv := serve.New(serve.Config{MaxSessions: 4})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // example teardown
	}()
	base := "http://" + addr

	post := func(path string, body string, out any) {
		resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			fmt.Println(err)
			return
		}
		defer resp.Body.Close()
		json.NewDecoder(resp.Body).Decode(out) //nolint:errcheck // example
	}

	var opened struct {
		ID     string `json:"id"`
		Tenant string `json:"tenant"`
	}
	post("/v1/sessions", `{"tenant":"acme","graph":{"builtin":"fig2"}}`, &opened)
	fmt.Printf("opened %s for %s\n", opened.ID, opened.Tenant)

	var pumped struct {
		Completed int64 `json:"completed"`
	}
	post("/v1/sessions/"+opened.ID+"/pump", `{"iterations":3}`, &pumped)
	fmt.Printf("pumped to %d iterations\n", pumped.Completed)

	// Raise p at the boundary opening the next iteration — the TPDF
	// transaction rule, over HTTP.
	post("/v1/sessions/"+opened.ID+"/pump", `{"iterations":2,"params":{"p":4}}`, &pumped)
	fmt.Printf("reconfigured and pumped to %d iterations\n", pumped.Completed)

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+opened.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var closed struct {
		Completed int64 `json:"completed"`
	}
	json.NewDecoder(resp.Body).Decode(&closed) //nolint:errcheck // example
	fmt.Printf("closed after %d iterations\n", closed.Completed)

	// Output:
	// opened s1 for acme
	// pumped to 3 iterations
	// reconfigured and pumped to 5 iterations
	// closed after 5 iterations
}
