package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/tpdf/obs"
)

// chaosManager builds a manager with fault injection enabled and a fast
// restart schedule so recovery tests finish quickly.
func chaosManager(extra func(*Config)) *Manager {
	cfg := Config{
		EnableChaos:       true,
		RestartBackoff:    time.Millisecond,
		RestartMaxBackoff: 8 * time.Millisecond,
	}
	if extra != nil {
		extra(&cfg)
	}
	return NewManager(cfg)
}

// TestSessionPanicRecovery injects a behavior panic into one session and
// checks that the supervisor restarts its engine from the last barrier
// checkpoint: the in-flight pump completes as if nothing happened, the
// session returns to Running, and the restart is visible on the session,
// the fleet, and the journal.
func TestSessionPanicRecovery(t *testing.T) {
	m := chaosManager(nil)
	ctx := ctxT(t)

	s, err := m.Open(ctx, "t", testGraph(t), nil, &ChaosSpec{Seed: 7, Panics: 1, Horizon: 16})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	n, err := s.Pump(ctx, 20, nil)
	if err != nil {
		t.Fatalf("pump across panic: %v", err)
	}
	if n != 20 {
		t.Fatalf("completed = %d, want 20", n)
	}
	if got := s.State(); got != StateRunning {
		t.Fatalf("state after recovery = %v, want running", got)
	}
	if s.Panics() != 1 || s.Restarts() != 1 {
		t.Fatalf("panics=%d restarts=%d, want 1/1", s.Panics(), s.Restarts())
	}
	if st := m.Stats(); st.Panics != 1 || st.Restarts != 1 {
		t.Fatalf("fleet panics=%d restarts=%d, want 1/1", st.Panics, st.Restarts)
	}
	var sawAbort, sawRestore bool
	for _, ev := range s.TraceJournal().Events() {
		switch ev.Kind {
		case obs.EvAbort:
			sawAbort = true
		case obs.EvRestore:
			sawRestore = true
		}
	}
	if !sawAbort || !sawRestore {
		t.Fatalf("journal abort=%v restore=%v, want both", sawAbort, sawRestore)
	}

	// The recovered session keeps working and drains cleanly.
	if _, err := s.Pump(ctx, 5, nil); err != nil {
		t.Fatalf("pump after recovery: %v", err)
	}
	if _, err := m.Close(ctx, s.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSessionPanicIsolation crashes one session repeatedly past its
// restart budget while a neighbor session keeps pumping: the crashing
// session must fail alone — the neighbor and the process never notice.
func TestSessionPanicIsolation(t *testing.T) {
	m := chaosManager(func(c *Config) { c.MaxRestarts = -1 })
	ctx := ctxT(t)

	victim, err := m.Open(ctx, "t", testGraph(t), nil, &ChaosSpec{Seed: 3, Panics: 1, Horizon: 8})
	if err != nil {
		t.Fatalf("open victim: %v", err)
	}
	bystander, err := m.Open(ctx, "t", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open bystander: %v", err)
	}

	_, err = victim.Pump(ctx, 20, nil)
	if err == nil {
		t.Fatal("victim pump succeeded; want engine failure with recovery disabled")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("victim error %v does not name the panic", err)
	}
	if got := victim.State(); got != StateFailed {
		t.Fatalf("victim state = %v, want failed", got)
	}

	if _, err := bystander.Pump(ctx, 10, nil); err != nil {
		t.Fatalf("bystander pump: %v", err)
	}
	if got := bystander.State(); got != StateRunning {
		t.Fatalf("bystander state = %v, want running", got)
	}
	if _, err := m.Close(ctx, bystander.ID); err != nil {
		t.Fatalf("close bystander: %v", err)
	}
	if _, err := m.Close(ctx, victim.ID); err == nil {
		t.Fatal("closing failed victim returned no error")
	}
}

// TestSessionRebindAbortSurvives sends a reconfiguration the engine must
// reject (a parameter below its declared minimum fails the rebind) and
// checks the session survives it: the abort is counted, the old valuation
// stays in force, and later pumps and rebinds work.
func TestSessionRebindAbortSurvives(t *testing.T) {
	m := NewManager(Config{})
	ctx := ctxT(t)

	s, err := m.Open(ctx, "t", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := s.Pump(ctx, 2, map[string]int64{"p": 0}); err != nil {
		t.Fatalf("pump with bad params: %v (want survived abort)", err)
	}
	if s.RebindAborts() != 1 {
		t.Fatalf("rebind aborts = %d, want 1", s.RebindAborts())
	}
	if st := m.Stats(); st.RebindAborts != 1 {
		t.Fatalf("fleet rebind aborts = %d, want 1", st.RebindAborts)
	}
	if got := s.State(); got != StateRunning {
		t.Fatalf("state after aborted rebind = %v, want running", got)
	}
	if _, err := s.Pump(ctx, 3, map[string]int64{"p": 4}); err != nil {
		t.Fatalf("pump with good params after abort: %v", err)
	}
	if _, err := m.Close(ctx, s.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestDrainVsReconfigureRace races in-flight Reconfigure/Pump commands
// against a fleet drain: every command call must return promptly (applied,
// or answered with the drain sentinel), the drain must complete, and no
// session goroutine may leak. Also covers the open-vs-drain registration
// window: sessions admitted while Drain snapshots its ID list must still
// be drained (or refused), never leaked.
func TestDrainVsReconfigureRace(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		m := NewManager(Config{DrainTimeout: 2 * time.Second})
		ctx := ctxT(t)

		s, err := m.Open(ctx, "t", testGraph(t), nil, nil)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := s.Pump(ctx, 1, nil); err != nil {
			t.Fatalf("warmup pump: %v", err)
		}

		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 8; j++ {
					err := s.Reconfigure(ctx, map[string]int64{"p": int64(2 + j%3)})
					if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, context.Canceled) {
						errs <- fmt.Errorf("reconfigure %d/%d: %w", i, j, err)
						return
					}
					if err != nil {
						return // drained; sentinel is the expected outcome
					}
				}
			}(i)
		}
		// Race a late Open against the drain: either admitted and then
		// drained, or refused with ErrShuttingDown — never leaked.
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.Open(ctx, "late", testGraph(t), nil, nil)
			if err != nil && !errors.Is(err, ErrShuttingDown) && !errors.Is(err, ErrBusy) {
				errs <- fmt.Errorf("late open: %w", err)
			}
		}()

		if err := m.Drain(ctx); err != nil {
			t.Fatalf("drain round %d: %v", round, err)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if st := m.Stats(); st.Sessions != 0 {
			t.Fatalf("round %d: %d sessions leaked past drain", round, st.Sessions)
		}
	}
	waitGoroutines(t, base, 2)
}

// TestAdmitWaitCancelWhileQueued cancels an opener waiting in the
// admission queue and checks the cancellation is clean: the queue
// position is released, the tenant quota is not consumed, and the
// rejection counters do not move (a cancel is not a server-side reject).
func TestAdmitWaitCancelWhileQueued(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1, AdmitWait: time.Minute})
	ctx := ctxT(t)

	s, err := m.Open(ctx, "t", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	cctx, cancel := context.WithCancel(ctx)
	openErr := make(chan error, 1)
	go func() {
		_, err := m.Open(cctx, "waiter", testGraph(t), nil, nil)
		openErr <- err
	}()
	// Wait until the opener is queued, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("opener never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-openErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued open returned %v, want context.Canceled", err)
	}
	if d := m.QueueDepth(); d != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", d)
	}
	st := m.Stats()
	if st.RejectedBusy != 0 || st.RejectedQuota != 0 {
		t.Fatalf("cancel counted as rejection: %+v", st)
	}

	// The cancelled opener must not hold quota: with the slot freed, the
	// same tenant can open immediately.
	if _, err := m.Close(ctx, s.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, err := m.Open(ctx, "waiter", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open after cancel: %v", err)
	}
	if _, err := m.Close(ctx, s2.ID); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

// TestChaosSoakFleet is the in-process chaos soak: a fleet of sessions
// each carrying a seeded fault schedule (panics, delays, rebind aborts)
// runs through the full HTTP surface via RunLoad. Every session must
// complete — injected panics recovered by supervisors, aborted rebinds
// absorbed — with zero failed sessions, zero leaks, zero goroutine leaks.
func TestChaosSoakFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short")
	}
	base := runtime.NumGoroutine()
	srv := New(Config{
		MaxSessions:       64,
		EnableChaos:       true,
		RestartBackoff:    time.Millisecond,
		RestartMaxBackoff: 8 * time.Millisecond,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	ctx := ctxT(t)

	rep, err := RunLoad(ctx, LoadConfig{
		BaseURL:     "http://" + addr,
		Sessions:    50,
		Concurrency: 16,
		Pumps:       4,
		Iterations:  8,
		Chaos:       &ChaosSpec{Seed: 42, Panics: 1, Delays: 1, RebindAborts: 1, Horizon: 24},
	})
	if err != nil {
		t.Fatalf("chaos soak: %v", err)
	}
	if rep.Failed != 0 || rep.Leaked != 0 {
		t.Fatalf("chaos soak: %d failed, %d leaked (want 0/0)", rep.Failed, rep.Leaked)
	}
	if !rep.MetricsValid {
		t.Fatal("metrics exposition invalid during chaos soak")
	}
	if rep.Panics == 0 || rep.Restarts == 0 {
		t.Fatalf("chaos injected nothing: panics=%d restarts=%d", rep.Panics, rep.Restarts)
	}
	if rep.RebindAborts == 0 {
		t.Fatalf("chaos run saw no rebind aborts")
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitGoroutines(t, base, 4)
}
