package serve

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count returns to within slack of
// base (engines park and exit asynchronously after drain acks) — a
// hand-rolled goleak: if sessions leaked actors or ring waiters, the count
// never comes back down and the test fails with a stack dump.
func waitGoroutines(t *testing.T, base int, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, started with %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrain opens a fleet, keeps pumps in flight, then drains: every
// in-flight pump must complete (sessions stop at barriers, not mid-pump),
// every engine must exit cleanly, and no goroutines may leak.
func TestGracefulDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	m := NewManager(Config{MaxSessions: 16, DrainTimeout: 10 * time.Second})
	ctx := ctxT(t)
	g := testGraph(t)

	const fleet = 8
	sessions := make([]*Session, fleet)
	for i := range sessions {
		s, err := m.Open(ctx, "t", g, nil, nil)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		sessions[i] = s
	}

	// Keep a pump in flight on every session while the drain begins.
	var wg sync.WaitGroup
	pumped := make([]int64, fleet)
	pumpErr := make([]error, fleet)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			pumped[i], pumpErr[i] = s.Pump(ctx, 200, nil)
		}(i, s)
	}

	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	for i := range sessions {
		// A pump that raced the drain is answered, never hung: either it ran
		// to completion, or the session stopped at a transaction barrier and
		// acked the partial iteration count (in-flight firings complete; the
		// rest of the pump is shed), or the session closed before accepting.
		if pumpErr[i] != nil && !errors.Is(pumpErr[i], ErrClosed) {
			t.Fatalf("pump %d: %v", i, pumpErr[i])
		}
		if pumpErr[i] == nil && (pumped[i] < 0 || pumped[i] > 200) {
			t.Fatalf("pump %d acked %d iterations, want 0..200", i, pumped[i])
		}
		// Whatever the ack said must match the engine's own final count.
		if pumpErr[i] == nil && sessions[i].Completed() != pumped[i] {
			t.Fatalf("pump %d acked %d but engine completed %d", i, pumped[i], sessions[i].Completed())
		}
	}
	if st := m.Stats(); st.Sessions != 0 || st.Failed != 0 {
		t.Fatalf("after drain: %+v", st)
	}
	// New admissions are refused while shut down.
	if _, err := m.Open(ctx, "t", g, nil, nil); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("open after drain: %v, want ErrShuttingDown", err)
	}
	waitGoroutines(t, base, 2)
}

// TestDrainInFlightPumpCompletes: a pump already accepted by the barrier
// hook finishes its iterations OR stops cleanly at a barrier with a partial
// count — never an error, never a hang — when the drain lands mid-pump.
func TestDrainInFlightPumpCompletes(t *testing.T) {
	m := NewManager(Config{DrainTimeout: 10 * time.Second})
	ctx := ctxT(t)
	s, err := m.Open(ctx, "t", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	started := make(chan struct{})
	var n int64
	var perr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		n, perr = s.Pump(ctx, 100_000, nil)
	}()
	<-started
	time.Sleep(2 * time.Millisecond) // let the pump get going
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-done
	if perr != nil && !errors.Is(perr, ErrClosed) {
		t.Fatalf("in-flight pump: %v", perr)
	}
	if perr == nil && (n <= 0 || n > 100_000) {
		t.Fatalf("in-flight pump acked %d iterations", n)
	}
	// The engine stopped at a transaction barrier: the final result exists
	// and its iteration count matches what the pump observed.
	if s.result == nil {
		t.Fatalf("drained session has no final result (err %v)", s.runErr)
	}
}

// TestDrainDeadlineHardCancels: when the drain context is already dead the
// session is cancelled outright instead of waiting for a barrier.
func TestDrainDeadlineHardCancels(t *testing.T) {
	m := NewManager(Config{})
	ctx := ctxT(t)
	s, err := m.Open(ctx, "t", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	// Close must still return (hard cancel path) instead of hanging.
	if _, err := m.Close(dead, s.ID); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("close with dead ctx: %v", err)
	}
	select {
	case <-s.done:
	case <-time.After(5 * time.Second):
		t.Fatalf("session engine did not exit after hard cancel")
	}
}

// TestServerShutdownHTTP drives graceful shutdown through the HTTP layer:
// requests in flight finish, the listener closes, the fleet drains, no
// goroutines leak.
func TestServerShutdownHTTP(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{MaxSessions: 8, DrainTimeout: 10 * time.Second})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	var opened openResponse
	if code := doJSON(t, http.MethodPost, "http://"+addr+"/v1/sessions",
		openRequest{Graph: GraphSpec{Builtin: "fig2"}}, &opened); code != http.StatusCreated {
		t.Fatalf("open status = %d", code)
	}
	var pumped pumpResponse
	if code := doJSON(t, http.MethodPost, "http://"+addr+"/v1/sessions/"+opened.ID+"/pump",
		pumpRequest{Iterations: 10}, &pumped); code != http.StatusOK {
		t.Fatalf("pump status = %d", code)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is gone and the fleet is empty.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatalf("server still accepting connections after shutdown")
	}
	if st := s.Manager().Stats(); st.Sessions != 0 {
		t.Fatalf("sessions after shutdown: %d", st.Sessions)
	}
	waitGoroutines(t, base, 3)
}
