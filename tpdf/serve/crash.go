package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"
)

// CrashConfig drives the crash-recovery harness (tpdf-loadgen
// -crash-record / -crash-verify): a recorder pumps sessions against a
// durable server and journals every acked pump to a state file; after the
// server is killed (SIGKILL) and restarted on the same data directory, the
// verifier replays the journal against the recovered fleet.
type CrashConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// StateFile is where the recorder journals acked progress (rewritten
	// atomically after every ack) and where the verifier reads it back.
	StateFile string
	// Sessions is how many sessions the recorder opens (default 8).
	Sessions int
	// Tenants spreads sessions over this many tenant names (default 2).
	Tenants int
	// Iterations is the number of graph iterations per pump (default 4).
	Iterations int64
	// Pumps bounds the recording loop per session; zero (the default)
	// records until the server dies or the context expires.
	Pumps int
	// Graph is the graph spec every session opens (default builtin fig2).
	Graph GraphSpec
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
}

func (c CrashConfig) withDefaults() CrashConfig {
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.Tenants <= 0 {
		c.Tenants = 2
	}
	if c.Iterations <= 0 {
		c.Iterations = 4
	}
	if c.Graph.Builtin == "" && c.Graph.Source == "" {
		c.Graph = GraphSpec{Builtin: "fig2"}
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// CrashSession is one session's acked progress as journaled by the
// recorder: everything in it was acknowledged by the server, so all of it
// must survive the crash.
type CrashSession struct {
	ID     string           `json:"id"`
	Tenant string           `json:"tenant"`
	Acked  int64            `json:"acked"`
	Sinks  map[string]int64 `json:"sinks"`
}

// CrashState is the recorder's journal.
type CrashState struct {
	Sessions []CrashSession `json:"sessions"`
}

func writeStateAtomic(path string, st *CrashState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RunCrashRecord opens Sessions sessions and pumps them round-robin,
// atomically rewriting StateFile after every acked pump, until the server
// dies, the per-session Pumps bound is reached, or the context expires.
// The server being killed out from under it is the expected outcome, not
// an error: transport-level failures end the recording cleanly so the
// journal reflects exactly the acks received before the crash.
func RunCrashRecord(ctx context.Context, cfg CrashConfig) (*CrashState, error) {
	cfg = cfg.withDefaults()
	cl := &loadClient{base: cfg.BaseURL, hc: &http.Client{Timeout: cfg.Timeout}}

	st := &CrashState{Sessions: make([]CrashSession, 0, cfg.Sessions)}
	for i := 0; i < cfg.Sessions; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%cfg.Tenants)
		var opened openResponse
		if err := cl.do(ctx, http.MethodPost, "/v1/sessions",
			openRequest{Tenant: tenant, Graph: cfg.Graph}, &opened); err != nil {
			return st, fmt.Errorf("open session %d: %w", i, err)
		}
		st.Sessions = append(st.Sessions, CrashSession{ID: opened.ID, Tenant: opened.Tenant})
	}
	if err := writeStateAtomic(cfg.StateFile, st); err != nil {
		return st, err
	}

	for round := 0; cfg.Pumps <= 0 || round < cfg.Pumps; round++ {
		for i := range st.Sessions {
			if ctx.Err() != nil {
				return st, nil
			}
			cs := &st.Sessions[i]
			var pr pumpResponse
			err := cl.do(ctx, http.MethodPost, "/v1/sessions/"+cs.ID+"/pump",
				pumpRequest{Iterations: cfg.Iterations}, &pr)
			if err != nil {
				var he *httpError
				if asHTTPError(err, &he) {
					return st, fmt.Errorf("pump %s: %w", cs.ID, err)
				}
				// Transport error: the server was killed. Recording done.
				return st, nil
			}
			cs.Acked, cs.Sinks = pr.Completed, pr.SinkTokens
			if err := writeStateAtomic(cfg.StateFile, st); err != nil {
				return st, err
			}
		}
	}
	return st, nil
}

// CrashReport is the verifier's verdict over one recorded crash.
type CrashReport struct {
	Sessions int `json:"sessions"`
	// Recovered counts sessions found again after restart; must equal
	// Sessions for the gate to pass.
	Recovered int `json:"recovered"`
	// LostIterations sums max(0, acked-completed) over sessions: any
	// positive value means the server acked work it then lost.
	LostIterations int64 `json:"lost_iterations"`
	// ReplayedAhead counts sessions recovered past their last recorded
	// ack (a pump was in flight when the crash hit — allowed, the ack was
	// never delivered).
	ReplayedAhead int `json:"replayed_ahead"`
	// SinkMismatches counts sessions whose post-recovery output diverged
	// from the uninterrupted reference run at the same iteration count.
	SinkMismatches int   `json:"sink_mismatches"`
	HealthWaitMs   int64 `json:"health_wait_ms"`
}

// Pass reports whether the crash left no observable damage.
func (r *CrashReport) Pass() bool {
	return r.Recovered == r.Sessions && r.LostIterations == 0 && r.SinkMismatches == 0
}

// RunCrashVerify checks a restarted server against the recorder's journal:
// it waits for /healthz to leave "recovering", then asserts every recorded
// session was recovered at or past its last acked iteration, pumps each to
// a common target, and compares sink totals against a fresh uninterrupted
// reference session — byte-for-byte determinism across the crash.
func RunCrashVerify(ctx context.Context, cfg CrashConfig) (*CrashReport, error) {
	cfg = cfg.withDefaults()
	cl := &loadClient{base: cfg.BaseURL, hc: &http.Client{Timeout: cfg.Timeout}}

	data, err := os.ReadFile(cfg.StateFile)
	if err != nil {
		return nil, err
	}
	var st CrashState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("state file: %w", err)
	}
	rep := &CrashReport{Sessions: len(st.Sessions)}

	// Wait out recovery: /healthz answers 503 "recovering" until the
	// fleet is rebuilt.
	healthStart := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("waiting for /healthz: %w", err)
		}
		if err := cl.do(ctx, http.MethodGet, "/healthz", nil, nil); err == nil {
			break
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return rep, fmt.Errorf("waiting for /healthz: %w", ctx.Err())
		}
	}
	rep.HealthWaitMs = time.Since(healthStart).Milliseconds()

	// Pass 1: every acked iteration must have survived.
	var target int64
	completed := make(map[string]int64, len(st.Sessions))
	for _, cs := range st.Sessions {
		var got pumpResponse
		if err := cl.do(ctx, http.MethodGet, "/v1/sessions/"+cs.ID, nil, &got); err != nil {
			continue // not recovered; counted below
		}
		rep.Recovered++
		completed[cs.ID] = got.Completed
		if got.Completed < cs.Acked {
			rep.LostIterations += cs.Acked - got.Completed
		} else if got.Completed > cs.Acked {
			rep.ReplayedAhead++
		} else if !sameSinks(got.SinkTokens, cs.Sinks) {
			rep.SinkMismatches++
		}
		if got.Completed > target {
			target = got.Completed
		}
	}
	if rep.Recovered != rep.Sessions || rep.LostIterations > 0 {
		return rep, nil
	}

	// Pass 2: pump every session to a common target and compare against
	// an uninterrupted reference — the crash must not have perturbed the
	// deterministic output.
	target += cfg.Iterations
	var ref openResponse
	if err := cl.do(ctx, http.MethodPost, "/v1/sessions",
		openRequest{Tenant: "crash-ref", Graph: cfg.Graph}, &ref); err != nil {
		return rep, fmt.Errorf("open reference: %w", err)
	}
	var want pumpResponse
	if err := cl.do(ctx, http.MethodPost, "/v1/sessions/"+ref.ID+"/pump",
		pumpRequest{Iterations: target}, &want); err != nil {
		return rep, fmt.Errorf("pump reference: %w", err)
	}
	for _, cs := range st.Sessions {
		var got pumpResponse
		if err := cl.do(ctx, http.MethodPost, "/v1/sessions/"+cs.ID+"/pump",
			pumpRequest{Iterations: target - completed[cs.ID]}, &got); err != nil {
			return rep, fmt.Errorf("pump %s: %w", cs.ID, err)
		}
		if !sameSinks(got.SinkTokens, want.SinkTokens) {
			rep.SinkMismatches++
		}
		if err := cl.do(ctx, http.MethodDelete, "/v1/sessions/"+cs.ID, nil, nil); err != nil {
			return rep, fmt.Errorf("close %s: %w", cs.ID, err)
		}
	}
	if err := cl.do(ctx, http.MethodDelete, "/v1/sessions/"+ref.ID, nil, nil); err != nil {
		return rep, fmt.Errorf("close reference: %w", err)
	}
	return rep, nil
}

func sameSinks(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
