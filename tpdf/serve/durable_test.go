package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func durableConfig(t *testing.T) (Config, string) {
	t.Helper()
	dir := t.TempDir()
	return Config{DataDir: dir, PersistEvery: 1, DrainTimeout: 10 * time.Second}, dir
}

// TestDurableCrashRecovery is the tentpole acceptance test at the package
// level: acked pumps survive an abrupt process death (simulated by
// abandoning the manager without draining — no deferred flush runs), a
// second manager on the same data directory rebuilds the session, and the
// recovered session's subsequent output is identical to an uninterrupted
// reference run.
func TestDurableCrashRecovery(t *testing.T) {
	cfg, dir := durableConfig(t)
	ctx := ctxT(t)

	m1 := NewManager(cfg)
	if m1.storeErr != nil {
		t.Fatalf("store open: %v", m1.storeErr)
	}
	s, err := m1.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const acked = 3
	if n, err := s.Pump(ctx, acked, nil); err != nil || n != acked {
		t.Fatalf("pump: n=%d err=%v", n, err)
	}
	// Crash: walk away. No Drain, no Close — exactly what SIGKILL leaves
	// behind. The pump ack above already flushed its entry cut to disk.
	crashID := s.ID

	m2 := NewManager(cfg)
	rec := m2.Recover(ctx)
	if rec.Recovered != 1 || rec.Failed != 0 || rec.Active {
		t.Fatalf("recovery stats: %+v", rec)
	}
	rs, err := m2.Get(crashID)
	if err != nil {
		t.Fatalf("recovered session not resolvable: %v", err)
	}
	if got := rs.Completed(); got != acked {
		t.Fatalf("recovered completed = %d, want %d (acked)", got, acked)
	}

	// Fresh sessions must not collide with recovered IDs.
	s2, err := m2.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open after recovery: %v", err)
	}
	if s2.ID == crashID {
		t.Fatalf("new session reused recovered ID %q", crashID)
	}

	// The resumed leg must land exactly where an uninterrupted run does.
	const total = 7
	if n, err := rs.Pump(ctx, total-acked, nil); err != nil || n != total {
		t.Fatalf("pump recovered: n=%d err=%v", n, err)
	}
	ref := NewManager(Config{})
	refS, err := ref.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open reference: %v", err)
	}
	if _, err := refS.Pump(ctx, total, nil); err != nil {
		t.Fatalf("pump reference: %v", err)
	}
	if got, want := rs.SinkTokens(), refS.SinkTokens(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered sink tokens %v, want %v", got, want)
	}

	st := m2.Stats()
	if st.Durable == nil || st.Durable.Recovered != 1 {
		t.Fatalf("durable stats missing recovery: %+v", st.Durable)
	}
	if st.Recovery == nil || st.Recovery.Recovered != 1 {
		t.Fatalf("recovery stats missing: %+v", st.Recovery)
	}
	if entries, err := os.ReadDir(filepath.Join(dir, crashID)); err != nil || len(entries) == 0 {
		t.Fatalf("snapshot dir for %s: entries=%d err=%v", crashID, len(entries), err)
	}
	if err := m2.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDurableCloseDeletesDrainKeeps verifies the retention split: a client
// DELETE removes the session's snapshots (no disk leak), while a fleet
// drain keeps them so the next boot resumes every still-open session.
func TestDurableCloseDeletesDrainKeeps(t *testing.T) {
	cfg, dir := durableConfig(t)
	ctx := ctxT(t)

	m1 := NewManager(cfg)
	closed, err := m1.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := closed.Pump(ctx, 2, nil); err != nil {
		t.Fatalf("pump: %v", err)
	}
	kept, err := m1.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	if _, err := kept.Pump(ctx, 4, nil); err != nil {
		t.Fatalf("pump 2: %v", err)
	}

	if _, err := m1.Close(ctx, closed.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, closed.ID)); !os.IsNotExist(err) {
		t.Fatalf("client-closed session left snapshots: %v", err)
	}
	if st := m1.Stats(); st.Durable == nil || st.Durable.Deleted != 1 {
		t.Fatalf("deleted counter: %+v", st.Durable)
	}

	if err := m1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if entries, err := os.ReadDir(filepath.Join(dir, kept.ID)); err != nil || len(entries) == 0 {
		t.Fatalf("drained session lost snapshots: entries=%d err=%v", len(entries), err)
	}

	m2 := NewManager(cfg)
	rec := m2.Recover(ctx)
	if rec.Recovered != 1 || rec.Failed != 0 {
		t.Fatalf("recovery stats after drain: %+v", rec)
	}
	rs, err := m2.Get(kept.ID)
	if err != nil {
		t.Fatalf("drained session not recovered: %v", err)
	}
	if got := rs.Completed(); got != 4 {
		t.Fatalf("recovered completed = %d, want 4", got)
	}
	if err := m2.Drain(ctx); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
}

// TestRecoverReportsFailures: a session directory whose snapshots are all
// garbage is reported (with a reason) and left on disk for forensics,
// while valid neighbors still recover.
func TestRecoverReportsFailures(t *testing.T) {
	cfg, dir := durableConfig(t)
	ctx := ctxT(t)

	m1 := NewManager(cfg)
	s, err := m1.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := s.Pump(ctx, 2, nil); err != nil {
		t.Fatalf("pump: %v", err)
	}
	if err := m1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	bad := filepath.Join(dir, "s99")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "ck-0000000000000001.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(cfg)
	rec := m2.Recover(ctx)
	if rec.Recovered != 1 || rec.Failed != 1 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	if len(rec.Reasons) != 1 || !strings.HasPrefix(rec.Reasons[0], "s99: ") {
		t.Fatalf("failure reasons: %v", rec.Reasons)
	}
	if _, err := os.Stat(filepath.Join(bad, "ck-0000000000000001.snap")); err != nil {
		t.Fatalf("failed session's snapshots should stay on disk: %v", err)
	}
	if st := m2.Stats(); st.Durable.RecoveryFailed != 1 {
		t.Fatalf("recoveryFailed counter: %+v", st.Durable)
	}
	// seedNextID pushed numbering past every on-disk directory — including
	// the unrecoverable s99, whose snapshot directory a fresh session must
	// never write into.
	s2, err := m2.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if s2.ID == s.ID || s2.ID == "s99" {
		t.Fatalf("new session reused on-disk ID %q", s2.ID)
	}
	if err := m2.Drain(ctx); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
}

// TestOpenDuringRecoveryNoIDCollision: the ID counter is seeded from the
// on-disk store synchronously at NewManager — before the listener can
// admit anyone — so a client Open racing background recovery is never
// handed an ID matching a not-yet-recovered durable session (which would
// write into, and eventually prune away, that session's snapshots).
func TestOpenDuringRecoveryNoIDCollision(t *testing.T) {
	cfg, _ := durableConfig(t)
	ctx := ctxT(t)

	m1 := NewManager(cfg)
	s, err := m1.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const acked = 3
	if _, err := s.Pump(ctx, acked, nil); err != nil {
		t.Fatalf("pump: %v", err)
	}
	// Crash (no drain), restart — and admit a client BEFORE recovery runs,
	// exactly the window a listener accepting ahead of background recovery
	// leaves open.
	m2 := NewManager(cfg)
	early, err := m2.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open during recovery window: %v", err)
	}
	if early.ID == s.ID {
		t.Fatalf("racing Open reused on-disk session ID %q", s.ID)
	}
	rec := m2.Recover(ctx)
	if rec.Recovered != 1 || rec.Failed != 0 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	rs, err := m2.Get(s.ID)
	if err != nil {
		t.Fatalf("durable session lost to the racing Open: %v", err)
	}
	if got := rs.Completed(); got != acked {
		t.Fatalf("recovered completed = %d, want %d (acked)", got, acked)
	}
	if err := m2.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestPumpNotDurableOnFlushFailure: when the synchronous flush covering a
// pump fails, the pump must fail with ErrNotDurable instead of acking work
// that is not crash-safe. The iterations still ran — the count is reported
// — and the session recovers once the store is writable again.
func TestPumpNotDurableOnFlushFailure(t *testing.T) {
	cfg, dir := durableConfig(t)
	ctx := ctxT(t)

	m := NewManager(cfg)
	s, err := m.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if n, err := s.Pump(ctx, 2, nil); err != nil || n != 2 {
		t.Fatalf("pump: n=%d err=%v", n, err)
	}

	// Break the store out from under the session: replace its snapshot
	// directory with a plain file, so writes fail (ENOTDIR) even as root.
	sessDir := filepath.Join(dir, s.ID)
	if err := os.RemoveAll(sessDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sessDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := s.Pump(ctx, 3, nil)
	if !errors.Is(err, ErrNotDurable) {
		t.Fatalf("pump on broken store: err=%v, want ErrNotDurable", err)
	}
	if n != 5 {
		t.Fatalf("completed = %d, want 5 (the work ran; only durability failed)", n)
	}
	if st := m.Stats(); st.Durable == nil || st.Durable.PersistErrors == 0 {
		t.Fatalf("persist errors not counted: %+v", st.Durable)
	}

	// Repair the store: the next pump offers a fresh cut, flushes it, and
	// acks durably again.
	if err := os.Remove(sessDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(sessDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Pump(ctx, 1, nil); err != nil || n != 6 {
		t.Fatalf("pump after repair: n=%d err=%v", n, err)
	}
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestHealthzRecovering: the health endpoint answers 503 "recovering"
// while cold-start recovery runs, then 200 once it completes.
func TestHealthzRecovering(t *testing.T) {
	srv := New(Config{})
	srv.m.recovering.Store(true)

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "recovering") {
		t.Fatalf("healthz during recovery: %d %s", rr.Code, rr.Body.String())
	}

	srv.m.recovering.Store(false)
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz after recovery: %d %s", rr.Code, rr.Body.String())
	}
}

// TestDurableMetricsExposed: the /metrics surface carries the
// tpdf_durable_* families once a store is configured.
func TestDurableMetricsExposed(t *testing.T) {
	cfg, _ := durableConfig(t)
	ctx := ctxT(t)

	srv := New(cfg)
	s, err := srv.m.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := s.Pump(ctx, 2, nil); err != nil {
		t.Fatalf("pump: %v", err)
	}

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		`tpdf_durable_events_total{event="persist"}`,
		"tpdf_durable_snapshot_bytes",
		"tpdf_durable_bytes_total",
		"tpdf_durable_persist_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if err := srv.m.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
