package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), s.m.cfg.DrainTimeout)
		defer cancel()
		s.m.Drain(ctx) //nolint:errcheck // fleet cleanup
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, req any, resp any) int {
	t.Helper()
	var body *bytes.Reader
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(b)
	} else {
		body = bytes.NewReader(nil)
	}
	hr, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	res, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer res.Body.Close()
	if resp != nil && res.StatusCode < 300 {
		if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
			t.Fatalf("decode %s %s: %v", method, url, err)
		}
	}
	return res.StatusCode
}

// TestHTTPSessionFlow exercises the full REST surface: open, pump,
// reconfigure, stats, close, and the 404/409 error paths.
func TestHTTPSessionFlow(t *testing.T) {
	_, ts := testServer(t, Config{})

	var opened openResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		openRequest{Tenant: "acme", Graph: GraphSpec{Builtin: "fig2"}}, &opened)
	if code != http.StatusCreated {
		t.Fatalf("open status = %d", code)
	}
	if opened.ID == "" || opened.Tenant != "acme" {
		t.Fatalf("open response: %+v", opened)
	}

	var pumped pumpResponse
	code = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+opened.ID+"/pump",
		pumpRequest{Iterations: 4}, &pumped)
	if code != http.StatusOK || pumped.Completed != 4 {
		t.Fatalf("pump: status %d, %+v", code, pumped)
	}
	var total int64
	for _, v := range pumped.SinkTokens {
		total += v
	}
	if total <= 0 {
		t.Fatalf("pump produced no sink tokens: %+v", pumped)
	}

	code = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+opened.ID+"/reconfigure",
		reconfigureRequest{Params: map[string]int64{"p": 5}}, nil)
	if code != http.StatusOK {
		t.Fatalf("reconfigure status = %d", code)
	}

	var st Stats
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Sessions != 1 || st.Cache.Compiles != 1 {
		t.Fatalf("stats: %+v", st)
	}

	var closed closeResponse
	code = doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+opened.ID, nil, &closed)
	if code != http.StatusOK || closed.Completed != 4 || len(closed.Firings) == 0 {
		t.Fatalf("close: status %d, %+v", code, closed)
	}

	// Unknown and already-closed sessions.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/nope/pump", pumpRequest{Iterations: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("pump unknown session status = %d, want 404", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+opened.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("double close status = %d, want 404", code)
	}
}

// TestHTTPAdmissionStatuses maps the sentinel taxonomy onto HTTP codes.
func TestHTTPAdmissionStatuses(t *testing.T) {
	_, ts := testServer(t, Config{MaxSessions: 1, MaxSessionsPerTenant: 1, AdmitWait: -1})

	spec := GraphSpec{Builtin: "fig2"}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", openRequest{Tenant: "a", Graph: spec}, nil); code != http.StatusCreated {
		t.Fatalf("open status = %d", code)
	}
	// Same tenant: quota → 429. Other tenant: slots full → 429.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", openRequest{Tenant: "a", Graph: spec}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("quota status = %d, want 429", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", openRequest{Tenant: "b", Graph: spec}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("busy status = %d, want 429", code)
	}
	// Unknown builtin → 400.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", openRequest{Graph: GraphSpec{Builtin: "zzz"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad graph status = %d, want 400", code)
	}
	// Inadmissible graph → 422.
	src := `graph bad {
  kernel A exec 1;
  kernel B exec 1;
  edge e1: A [1] -> [1] B;
  edge e2: A [2] -> [1] B;
}`
	// Use a manager with a free slot so admission reaches analysis.
	_, ts2 := testServer(t, Config{})
	if code := doJSON(t, http.MethodPost, ts2.URL+"/v1/sessions", openRequest{Graph: GraphSpec{Source: src}}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("inadmissible status = %d, want 422", code)
	}
}

// TestHTTPAnalyzeAndSweep exercises the batch endpoints end to end.
func TestHTTPAnalyzeAndSweep(t *testing.T) {
	_, ts := testServer(t, Config{})

	var an analyzeResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/analyze",
		analyzeRequest{Graph: GraphSpec{Builtin: "fig2"}}, &an)
	if code != http.StatusOK {
		t.Fatalf("analyze status = %d", code)
	}
	if !an.Consistent || !an.Bounded || an.Bound <= 0 || !strings.Contains(an.Report, "consistency: OK") {
		t.Fatalf("analyze response: %+v", an)
	}

	var sw sweepResponse
	code = doJSON(t, http.MethodPost, ts.URL+"/v1/sweep", sweepRequest{
		Graph: GraphSpec{Builtin: "fig2"},
		Axes:  map[string][]int64{"p": {1, 2, 3}},
	}, &sw)
	if code != http.StatusOK {
		t.Fatalf("sweep status = %d", code)
	}
	if len(sw.Points) != 3 {
		t.Fatalf("sweep points = %d, want 3", len(sw.Points))
	}
	for _, p := range sw.Points {
		if p.Time <= 0 || p.TotalBuffer <= 0 {
			t.Fatalf("degenerate sweep point: %+v", p)
		}
	}

	// Analyze shares the program cache with sessions: opening a session of
	// the analyzed graph must not recompile.
	var opened openResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		openRequest{Graph: GraphSpec{Builtin: "fig2"}}, &opened); code != http.StatusCreated {
		t.Fatalf("open status = %d", code)
	}
	var st Stats
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st)
	if st.Cache.Compiles != 1 {
		t.Fatalf("compiles after analyze+open = %d, want 1 (shared cache)", st.Cache.Compiles)
	}
}

// TestHTTPHealthz sanity-checks the probe endpoint.
func TestHTTPHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", res.StatusCode)
	}
}

// TestLoadgenAgainstServer runs the loadgen library against an in-process
// server — a miniature soak that asserts zero failed and zero leaked
// sessions (the full-size version runs in TestSoak).
func TestLoadgenAgainstServer(t *testing.T) {
	s := New(Config{MaxSessions: 16})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // test cleanup
	}()

	rep, err := RunLoad(ctxT(t), LoadConfig{
		BaseURL:     "http://" + addr,
		Sessions:    24,
		Concurrency: 8,
		Pumps:       3,
		Iterations:  4,
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.Failed != 0 || rep.Leaked != 0 {
		t.Fatalf("failed=%d leaked=%d, want 0/0 (report %+v)", rep.Failed, rep.Leaked, rep)
	}
	if want := int64(24 * 3 * 4); rep.TotalIterations != want {
		t.Fatalf("total iterations = %d, want %d", rep.TotalIterations, want)
	}
	if rep.Open.Count != 24 || rep.Pump.Count != 24*3 {
		t.Fatalf("latency sample counts: %+v", rep)
	}
	if st := s.Manager().Stats(); st.Cache.Compiles != 1 {
		t.Fatalf("soak recompiled: %d compiles", st.Cache.Compiles)
	}
}

// TestSoak is the acceptance-criterion soak: >= 100 concurrent sessions on
// one server, zero failed, zero leaked. Skipped in -short runs; CI runs it
// under -race in the soak job.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	const fleet = 100
	s := New(Config{MaxSessions: fleet, AdmitWait: 5 * time.Second})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // test cleanup
	}()

	rep, err := RunLoad(ctxT(t), LoadConfig{
		BaseURL:     "http://" + addr,
		Sessions:    2 * fleet,
		Concurrency: fleet, // all 100 alive at once
		Tenants:     8,
		Pumps:       5,
		Iterations:  8,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("soak failed sessions: %d", rep.Failed)
	}
	if rep.Leaked != 0 {
		t.Fatalf("soak leaked sessions: %d", rep.Leaked)
	}
	if want := int64(2 * fleet * 5 * 8); rep.TotalIterations != want {
		t.Fatalf("total iterations = %d, want %d", rep.TotalIterations, want)
	}
	if st := s.Manager().Stats(); st.Cache.Compiles != 1 {
		t.Fatalf("soak recompiled: %d compiles for one graph", st.Cache.Compiles)
	}
	t.Logf("soak: %d sessions, %.1f sessions/sec, pump p50=%v p99=%v",
		rep.Sessions, rep.SessionsPerSec, rep.Pump.P50, rep.Pump.P99)
}
