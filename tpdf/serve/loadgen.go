package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/tpdf/obs"
)

// LoadConfig drives RunLoad against a running tpdf-serve instance.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Sessions is the total number of sessions to run (default 100).
	Sessions int
	// Concurrency is how many sessions are alive at once (default 32;
	// capped to Sessions).
	Concurrency int
	// Tenants spreads sessions round-robin over this many tenant names
	// (default 4).
	Tenants int
	// Pumps is the number of pump requests per session (default 8).
	Pumps int
	// Iterations is the number of graph iterations per pump (default 16).
	Iterations int64
	// Graph is the graph spec every session opens (default: builtin fig2).
	Graph GraphSpec
	// Timeout bounds each individual HTTP request (default 30s).
	Timeout time.Duration
	// Chaos, when non-nil, attaches a seeded fault schedule to every
	// session (session i gets Seed+i, so schedules differ but the whole
	// run replays from one seed). Requires a server started with -chaos.
	// Sessions must still all complete: injected panics are expected to
	// be recovered by the server's supervisor, not to fail the run.
	Chaos *ChaosSpec
	// ChaosParams are the parameter overrides chaos sessions cycle
	// through between pumps (giving injected rebind aborts a rebind to
	// reject). Default {"p": 2,3,4}, matching the default fig2 graph.
	ChaosParams map[string][]int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Sessions <= 0 {
		c.Sessions = 100
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.Concurrency > c.Sessions {
		c.Concurrency = c.Sessions
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Pumps <= 0 {
		c.Pumps = 8
	}
	if c.Iterations <= 0 {
		c.Iterations = 16
	}
	if c.Graph.Builtin == "" && c.Graph.Source == "" {
		c.Graph = GraphSpec{Builtin: "fig2"}
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Chaos != nil && len(c.ChaosParams) == 0 {
		c.ChaosParams = map[string][]int64{"p": {2, 3, 4}}
	}
	return c
}

// Percentiles summarizes one endpoint's request latencies.
type Percentiles struct {
	Count int     `json:"count"`
	P50   int64   `json:"p50_ns"`
	P95   int64   `json:"p95_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
	Mean  float64 `json:"mean_ns"`
}

func summarize(ns []int64) Percentiles {
	if len(ns) == 0 {
		return Percentiles{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(ns)-1))
		return ns[i]
	}
	var sum int64
	for _, v := range ns {
		sum += v
	}
	return Percentiles{
		Count: len(ns),
		P50:   at(0.50),
		P95:   at(0.95),
		P99:   at(0.99),
		Max:   ns[len(ns)-1],
		Mean:  float64(sum) / float64(len(ns)),
	}
}

// LoadReport is what a soak run measured: per-endpoint latency
// percentiles, throughput, and the failure/leak accounting the CI gate
// asserts on (both must be zero on a healthy server).
type LoadReport struct {
	Sessions        int   `json:"sessions"`
	Concurrency     int   `json:"concurrency"`
	Tenants         int   `json:"tenants"`
	TotalIterations int64 `json:"total_iterations"`
	// Failed counts sessions that hit any error on open, pump, or close.
	Failed int `json:"failed"`
	// Rejected counts 429/503 admission pushbacks (expected under
	// overload; they are backpressure, not failures, and are retried).
	Rejected int64 `json:"rejected"`
	// Leaked counts sessions still reported by /v1/stats after the run.
	Leaked int64 `json:"leaked"`
	// MetricsSeries is the number of sample lines the mid-run /metrics
	// scrape exposed; MetricsValid reports whether the exposition parsed
	// as Prometheus text (a parse failure fails the whole run).
	MetricsSeries int  `json:"metrics_series"`
	MetricsValid  bool `json:"metrics_valid"`
	// Fleet fault-tolerance counters from the final /v1/stats: in a
	// chaos run, Panics and Restarts prove injection and recovery both
	// happened (all sessions completed regardless).
	Panics       int64 `json:"panics"`
	Restarts     int64 `json:"restarts"`
	RebindAborts int64 `json:"rebind_aborts"`

	ElapsedMs      int64   `json:"elapsed_ms"`
	SessionsPerSec float64 `json:"sessions_per_sec"`

	Open  Percentiles `json:"open"`
	Pump  Percentiles `json:"pump"`
	Close Percentiles `json:"close"`
	// Session is the whole open→pumps→close lifecycle latency.
	Session Percentiles `json:"session"`
}

type loadClient struct {
	base string
	hc   *http.Client
}

type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("http %d: %s", e.status, e.body)
}

func (c *loadClient) do(ctx context.Context, method, path string, req, resp any) error {
	var body io.Reader
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	hr, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if req != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	res, err := c.hc.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return err
	}
	if res.StatusCode >= 300 {
		return &httpError{status: res.StatusCode, body: string(bytes.TrimSpace(data))}
	}
	if resp != nil {
		return json.Unmarshal(data, resp)
	}
	return nil
}

// raw fetches a non-JSON endpoint (the Prometheus exposition) verbatim.
func (c *loadClient) raw(ctx context.Context, path string) (string, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", err
	}
	res, err := c.hc.Do(hr)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 8<<20))
	if err != nil {
		return "", err
	}
	if res.StatusCode >= 300 {
		return "", &httpError{status: res.StatusCode, body: string(bytes.TrimSpace(data))}
	}
	return string(data), nil
}

// RunLoad soaks the server: Sessions session lifecycles at Concurrency in
// flight, each open → Pumps×pump → close, with admission pushback
// (429/503) retried after a short backoff. It returns the measured
// percentiles; it does not judge them (the caller / CI gate does).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	cl := &loadClient{
		base: cfg.BaseURL,
		hc: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: cfg.Concurrency,
			},
		},
	}

	var (
		mu       sync.Mutex
		openNs   []int64
		pumpNs   []int64
		closeNs  []int64
		sessNs   []int64
		failed   int
		rejected atomic.Int64
		iters    atomic.Int64
	)
	record := func(dst *[]int64, d time.Duration) {
		mu.Lock()
		*dst = append(*dst, int64(d))
		mu.Unlock()
	}

	// timedDo retries admission pushback (the server saying "not now")
	// but fails fast on everything else; only the successful attempt's
	// latency is recorded.
	timedDo := func(dst *[]int64, method, path string, req, resp any) error {
		for {
			start := time.Now()
			err := cl.do(ctx, method, path, req, resp)
			if err == nil {
				record(dst, time.Since(start))
				return nil
			}
			var he *httpError
			if ok := asHTTPError(err, &he); ok &&
				(he.status == http.StatusTooManyRequests || he.status == http.StatusServiceUnavailable) {
				rejected.Add(1)
				select {
				case <-time.After(2 * time.Millisecond):
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return err
		}
	}

	// One mid-run /metrics scrape, taken while the scraping session is
	// still open so the exposition carries live per-session series; the
	// text is validated structurally and a parse failure fails the run.
	var (
		scrapeOnce    sync.Once
		metricsSeries int
		metricsValid  bool
		metricsErr    error
	)
	scrapeMetrics := func() {
		text, err := cl.raw(ctx, "/metrics")
		if err != nil {
			metricsErr = fmt.Errorf("scrape /metrics: %w", err)
			return
		}
		n, err := obs.ValidateExposition(text)
		if err != nil {
			metricsErr = fmt.Errorf("invalid /metrics exposition: %w", err)
			return
		}
		metricsSeries, metricsValid = n, true
	}

	runSession := func(i int) error {
		tenant := fmt.Sprintf("tenant-%d", i%cfg.Tenants)
		start := time.Now()
		open := openRequest{Tenant: tenant, Graph: cfg.Graph}
		if cfg.Chaos != nil {
			spec := *cfg.Chaos
			spec.Seed += int64(i)
			open.Chaos = &spec
		}
		var opened openResponse
		if err := timedDo(&openNs, http.MethodPost, "/v1/sessions", open, &opened); err != nil {
			return fmt.Errorf("open: %w", err)
		}
		scrapeOnce.Do(scrapeMetrics)
		for p := 0; p < cfg.Pumps; p++ {
			var pump pumpRequest
			pump.Iterations = cfg.Iterations
			if cfg.Chaos != nil && p > 0 {
				// Cycle parameters so injected rebind aborts have a
				// rebind to reject; survivors apply normally.
				pump.Params = map[string]int64{}
				for name, vals := range cfg.ChaosParams {
					pump.Params[name] = vals[p%len(vals)]
				}
			}
			var pr pumpResponse
			if err := timedDo(&pumpNs, http.MethodPost, "/v1/sessions/"+opened.ID+"/pump",
				pump, &pr); err != nil {
				return fmt.Errorf("pump: %w", err)
			}
		}
		var cr closeResponse
		if err := timedDo(&closeNs, http.MethodDelete, "/v1/sessions/"+opened.ID, nil, &cr); err != nil {
			return fmt.Errorf("close: %w", err)
		}
		iters.Add(cr.Completed)
		record(&sessNs, time.Since(start))
		return nil
	}

	startAll := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	var firstErr atomic.Value
	for i := 0; i < cfg.Sessions; i++ {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := runSession(i); err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
				firstErr.CompareAndSwap(nil, fmt.Errorf("session %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(startAll)

	rep := &LoadReport{
		Sessions:        cfg.Sessions,
		Concurrency:     cfg.Concurrency,
		Tenants:         cfg.Tenants,
		TotalIterations: iters.Load(),
		Failed:          failed,
		Rejected:        rejected.Load(),
		ElapsedMs:       elapsed.Milliseconds(),
		SessionsPerSec:  float64(cfg.Sessions-failed) / elapsed.Seconds(),
		Open:            summarize(openNs),
		Pump:            summarize(pumpNs),
		Close:           summarize(closeNs),
		Session:         summarize(sessNs),
		MetricsSeries:   metricsSeries,
		MetricsValid:    metricsValid,
	}
	if metricsErr != nil {
		return rep, metricsErr
	}

	// Leak check: after every session closed, the server must report an
	// empty fleet.
	var st Stats
	if err := cl.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err == nil {
		rep.Leaked = int64(st.Sessions)
		rep.Panics = st.Panics
		rep.Restarts = st.Restarts
		rep.RebindAborts = st.RebindAborts
	}

	if err, ok := firstErr.Load().(error); ok && err != nil {
		return rep, err
	}
	return rep, nil
}

// BatchLoad drives RunBatchLoad: sequential analyze and sweep requests
// against the batch endpoints, measured individually.
type BatchLoad struct {
	BaseURL string
	// Analyzes and Sweeps are request counts (defaults 20 and 5).
	Analyzes int
	Sweeps   int
	// Graph is the spec every request names (default builtin fig2).
	Graph GraphSpec
	// Axes is the sweep grid (default {"p": 1..4}).
	Axes map[string][]int64
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
}

// BatchReport holds the measured batch-endpoint latencies.
type BatchReport struct {
	Analyze Percentiles `json:"analyze"`
	Sweep   Percentiles `json:"sweep"`
}

// RunBatchLoad measures the analyze and sweep endpoints request by request
// (the batch tier is about bounded concurrency, not throughput, so the
// interesting number is per-request service latency).
func RunBatchLoad(ctx context.Context, cfg BatchLoad) (*BatchReport, error) {
	if cfg.Analyzes <= 0 {
		cfg.Analyzes = 20
	}
	if cfg.Sweeps <= 0 {
		cfg.Sweeps = 5
	}
	if cfg.Graph.Builtin == "" && cfg.Graph.Source == "" {
		cfg.Graph = GraphSpec{Builtin: "fig2"}
	}
	if cfg.Axes == nil {
		cfg.Axes = map[string][]int64{"p": {1, 2, 3, 4}}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	cl := &loadClient{base: cfg.BaseURL, hc: &http.Client{Timeout: cfg.Timeout}}

	measure := func(n int, do func() error) ([]int64, error) {
		ns := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			if err := do(); err != nil {
				return nil, err
			}
			ns = append(ns, int64(time.Since(start)))
		}
		return ns, nil
	}

	analyzeNs, err := measure(cfg.Analyzes, func() error {
		var resp analyzeResponse
		return cl.do(ctx, http.MethodPost, "/v1/analyze", analyzeRequest{Graph: cfg.Graph}, &resp)
	})
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	sweepNs, err := measure(cfg.Sweeps, func() error {
		var resp sweepResponse
		return cl.do(ctx, http.MethodPost, "/v1/sweep",
			sweepRequest{Graph: cfg.Graph, Axes: cfg.Axes}, &resp)
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return &BatchReport{Analyze: summarize(analyzeNs), Sweep: summarize(sweepNs)}, nil
}

// asHTTPError unwraps err (possibly wrapped by url.Error) to an httpError.
func asHTTPError(err error, out **httpError) bool {
	for err != nil {
		if he, ok := err.(*httpError); ok {
			*out = he
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
