// Package serve is the multi-tenant streaming + analysis service tier: it
// hosts a fleet of persistent tpdf.Stream engines (session-per-client,
// graph-per-tenant), coalesces batch Analyze/Sweep requests onto a bounded
// worker budget, and keeps the whole fleet within fixed resource bounds via
// admission control (bounded session slots, per-tenant quotas — saturation
// is answered with a rejection, never with unbounded memory growth).
//
// The enabling piece is the shared compiled-program cache: sessions of the
// same graph share one immutable tpdf.CompiledGraph (compiled and analyzed
// exactly once, however many sessions race to open it) and each stamps its
// own small mutable rate state, so the engine's single-writer rule holds
// per session while compilation cost is paid once per graph.
//
// cmd/tpdf-serve exposes the server over HTTP; cmd/tpdf-loadgen soaks it
// and records the latency percentiles gated by BENCH_serve.json in CI.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/tpdf"
)

// cacheEntry is one graph's compile product. The once gate means N racing
// sessions of a new graph trigger exactly one Compile+Analyze; the losers
// block until it lands and then share the result.
type cacheEntry struct {
	once     sync.Once
	compiled *tpdf.CompiledGraph
	report   *tpdf.Report
	err      error
}

// CacheStats is a point-in-time snapshot of program-cache effectiveness.
type CacheStats struct {
	// Entries is the number of distinct graphs resident.
	Entries int `json:"entries"`
	// Compiles counts actual compilations — the cache's whole point is
	// that this stays at one per distinct graph however many sessions
	// open it.
	Compiles int64 `json:"compiles"`
	// Hits counts lookups served from an existing entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that created the entry (== Compiles unless a
	// compilation failed and was retried).
	Misses int64 `json:"misses"`
	// Rejected counts lookups refused because the cache was at capacity —
	// the admission-control signal that clients are submitting more
	// distinct graphs than the server is provisioned for.
	Rejected int64 `json:"rejected"`
}

// ProgramCache shares compile products across sessions, keyed by the
// canonical textual form of the graph (tpdf.Format round-trips, so two
// structurally identical graphs — however they were built — share one
// entry). Entries are immutable once compiled; the cache is safe for
// arbitrary concurrent use. Capacity is bounded: inserting beyond max
// distinct graphs is refused, keeping the server's memory proportional to
// the configured limit instead of to client creativity.
type ProgramCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry

	compiles atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	rejected atomic.Int64
}

// NewProgramCache builds a cache bounded to max distinct graphs (<= 0
// means 1024).
func NewProgramCache(max int) *ProgramCache {
	if max <= 0 {
		max = 1024
	}
	return &ProgramCache{max: max, entries: map[string]*cacheEntry{}}
}

// Get returns the shared compile product and admission report for g,
// compiling and analyzing it exactly once per distinct graph. The report
// is produced at the graph's default valuation; admission control reads
// its Bounded verdict.
func (c *ProgramCache) Get(g *tpdf.Graph) (*tpdf.CompiledGraph, *tpdf.Report, error) {
	key := tpdf.Format(g)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= c.max {
			c.mu.Unlock()
			c.rejected.Add(1)
			return nil, nil, fmt.Errorf("%w: program cache holds %d distinct graphs", ErrBusy, c.max)
		}
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()

	e.once.Do(func() {
		c.compiles.Add(1)
		e.compiled, e.err = tpdf.Compile(g)
		if e.err != nil {
			return
		}
		// Analyze through the *cached* source graph so sessions and report
		// agree on one canonical instance, and so the static verdict is
		// computed once per graph, not once per admission.
		e.report = tpdf.Analyze(e.compiled.Graph())
	})
	if e.err != nil {
		// Leave the failed entry resident: recompiling a broken graph per
		// request would let a hostile client buy a compilation per call.
		return nil, nil, e.err
	}
	return e.compiled, e.report, nil
}

// Stats snapshots the cache counters.
func (c *ProgramCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Entries:  n,
		Compiles: c.compiles.Load(),
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Rejected: c.rejected.Load(),
	}
}
