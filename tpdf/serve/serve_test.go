package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/tpdf"
)

func testGraph(t *testing.T) *tpdf.Graph {
	t.Helper()
	g, err := tpdf.Builtin("fig2")
	if err != nil {
		t.Fatalf("builtin fig2: %v", err)
	}
	return g
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestSessionLifecycle drives one session through open → pump → reconfigure
// → pump → drain and checks iteration accounting and sink progress.
func TestSessionLifecycle(t *testing.T) {
	m := NewManager(Config{})
	ctx := ctxT(t)

	s, err := m.Open(ctx, "acme", testGraph(t), nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if n := s.Completed(); n != 0 {
		t.Fatalf("fresh session completed = %d, want 0", n)
	}

	n, err := s.Pump(ctx, 3, nil)
	if err != nil {
		t.Fatalf("pump: %v", err)
	}
	if n != 3 {
		t.Fatalf("completed after pump = %d, want 3", n)
	}
	tok3 := s.SinkTokens()
	var sum3 int64
	for _, v := range tok3 {
		sum3 += v
	}
	if sum3 <= 0 {
		t.Fatalf("no sink tokens after 3 iterations: %v", tok3)
	}

	if err := s.Reconfigure(ctx, map[string]int64{"p": 4}); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	n, err = s.Pump(ctx, 2, nil)
	if err != nil {
		t.Fatalf("pump 2: %v", err)
	}
	if n != 5 {
		t.Fatalf("completed = %d, want 5", n)
	}

	res, err := m.Close(ctx, s.ID)
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if res == nil || len(res.Firings) == 0 {
		t.Fatalf("drain result missing firings: %+v", res)
	}
	if _, err := m.Get(s.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("closed session still resolvable: %v", err)
	}
	// Commands after drain answer ErrClosed.
	if _, err := s.Pump(ctx, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("pump after drain: %v, want ErrClosed", err)
	}
}

// TestProgramCacheSharedAcrossSessions is the acceptance criterion: N
// sessions of the same graph trigger exactly one Compile, however many race.
func TestProgramCacheSharedAcrossSessions(t *testing.T) {
	const sessions = 32
	m := NewManager(Config{MaxSessions: sessions})
	ctx := ctxT(t)

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	ids := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine builds its own Graph value so sharing must come
			// from the canonical-text cache key, not pointer identity.
			g, err := tpdf.Builtin("fig2")
			if err != nil {
				errs[i] = err
				return
			}
			s, err := m.Open(ctx, fmt.Sprintf("tenant-%d", i%4), g, nil, nil)
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = s.ID
			_, errs[i] = s.Pump(ctx, 2, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	st := m.Stats()
	if st.Cache.Compiles != 1 {
		t.Fatalf("compiles = %d, want exactly 1 for %d sessions of one graph", st.Cache.Compiles, sessions)
	}
	if st.Cache.Hits != sessions-1 {
		t.Fatalf("cache hits = %d, want %d", st.Cache.Hits, sessions-1)
	}
	if st.Sessions != sessions {
		t.Fatalf("open sessions = %d, want %d", st.Sessions, sessions)
	}

	for _, id := range ids {
		if _, err := m.Close(ctx, id); err != nil {
			t.Fatalf("close %s: %v", id, err)
		}
	}
	if st := m.Stats(); st.Sessions != 0 {
		t.Fatalf("sessions leaked after close: %d", st.Sessions)
	}
}

// TestAdmissionSlots checks that the fleet bound turns saturation into
// ErrBusy and that closing a session frees the slot.
func TestAdmissionSlots(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2, MaxSessionsPerTenant: 2, AdmitWait: -1})
	ctx := ctxT(t)
	g := testGraph(t)

	a, err := m.Open(ctx, "t1", g, nil, nil)
	if err != nil {
		t.Fatalf("open a: %v", err)
	}
	if _, err := m.Open(ctx, "t2", g, nil, nil); err != nil {
		t.Fatalf("open b: %v", err)
	}
	if _, err := m.Open(ctx, "t3", g, nil, nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("third open: %v, want ErrBusy", err)
	}
	if st := m.Stats(); st.RejectedBusy != 1 {
		t.Fatalf("rejected_busy = %d, want 1", st.RejectedBusy)
	}

	if _, err := m.Close(ctx, a.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := m.Open(ctx, "t1", g, nil, nil); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

// TestAdmissionQueue checks that a queued opener gets the slot released
// within AdmitWait instead of being bounced.
func TestAdmissionQueue(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1, MaxSessionsPerTenant: 2, AdmitWait: 5 * time.Second})
	ctx := ctxT(t)
	g := testGraph(t)

	a, err := m.Open(ctx, "t", g, nil, nil)
	if err != nil {
		t.Fatalf("open a: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Open(ctx, "t", g, nil, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the opener queue
	if _, err := m.Close(ctx, a.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued open: %v", err)
	}
}

// TestTenantQuota checks the per-tenant bound rejects independently of the
// global slot budget.
func TestTenantQuota(t *testing.T) {
	m := NewManager(Config{MaxSessions: 8, MaxSessionsPerTenant: 1, AdmitWait: -1})
	ctx := ctxT(t)
	g := testGraph(t)

	if _, err := m.Open(ctx, "small", g, nil, nil); err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := m.Open(ctx, "small", g, nil, nil); !errors.Is(err, ErrQuota) {
		t.Fatalf("second open for tenant: %v, want ErrQuota", err)
	}
	// A different tenant is unaffected.
	if _, err := m.Open(ctx, "other", g, nil, nil); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	if st := m.Stats(); st.RejectedQuota != 1 {
		t.Fatalf("rejected_quota = %d, want 1", st.RejectedQuota)
	}
}

// TestInadmissibleGraph: a graph without the Theorem 2 verdict is refused
// at admission (it could not run in bounded memory) and does not consume a
// slot.
func TestInadmissibleGraph(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1, AdmitWait: -1})
	ctx := ctxT(t)

	// Inconsistent rates: the two parallel edges force qA = qB and
	// 2 qA = qB at once — no repetition vector exists.
	bad, err := tpdf.Parse(`graph bad {
  kernel A exec 1;
  kernel B exec 1;
  edge e1: A [1] -> [1] B;
  edge e2: A [2] -> [1] B;
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := m.Open(ctx, "t", bad, nil, nil); !errors.Is(err, ErrNotAdmissible) {
		t.Fatalf("open inconsistent graph: %v, want ErrNotAdmissible", err)
	}
	// The slot was returned: a good graph still fits.
	if _, err := m.Open(ctx, "t", testGraph(t), nil, nil); err != nil {
		t.Fatalf("open after rejection: %v", err)
	}
}

// TestBatchBudget bounds concurrent analyze/sweep jobs.
func TestBatchBudget(t *testing.T) {
	m := NewManager(Config{BatchWorkers: 1, AdmitWait: -1})
	ctx := ctxT(t)

	rel, err := m.AcquireBatch(ctx)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := m.AcquireBatch(ctx); !errors.Is(err, ErrBusy) {
		t.Fatalf("second acquire: %v, want ErrBusy", err)
	}
	rel()
	rel2, err := m.AcquireBatch(ctx)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel2()
}
