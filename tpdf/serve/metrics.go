package serve

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/tpdf/obs"
)

// serveObs is the server's own observability state: per-endpoint latency
// histograms and response-code counters, fed by the middleware wrapping
// every handler. Session-level engine metrics live in each Session's
// private registry; /metrics stitches both together into one exposition.
type serveObs struct {
	mu      sync.Mutex
	latency map[string]*obs.Histogram
	codes   map[int]int64
}

func newServeObs() *serveObs {
	return &serveObs{
		latency: map[string]*obs.Histogram{},
		codes:   map[int]int64{},
	}
}

// statusRecorder captures the response status for the middleware. Handlers
// that never call WriteHeader implicitly answer 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// wrap instruments a mux: request latency lands in a per-route histogram
// (keyed by the matched ServeMux pattern, so path parameters do not explode
// the label space) and the response code in a counter. The 429 and 503
// series are the admission-control observables the load balancer and the
// loadgen watch.
func (o *serveObs) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		// The mux assigns r.Pattern on match; unmatched requests keep "".
		pattern := r.Pattern
		if pattern == "" {
			pattern = "unmatched"
		}
		o.mu.Lock()
		h := o.latency[pattern]
		if h == nil {
			h = obs.NewLatencyHistogram()
			o.latency[pattern] = h
		}
		o.codes[rec.status]++
		o.mu.Unlock()
		h.Observe(elapsed)
	})
}

// snapshot copies the middleware state for rendering (histogram pointers
// are shared; their buckets are atomic).
func (o *serveObs) snapshot() (routes []string, hists map[string]*obs.Histogram, codes map[int]int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	hists = make(map[string]*obs.Histogram, len(o.latency))
	codes = make(map[int]int64, len(o.codes))
	for p, h := range o.latency {
		routes = append(routes, p)
		hists[p] = h
	}
	for c, n := range o.codes {
		codes[c] = n
	}
	sort.Strings(routes)
	return routes, hists, codes
}

// handleMetrics renders the Prometheus text exposition: fleet-level
// admission and cache counters, per-endpoint latency histograms, and one
// series set per open session (barriers, rebinds, ring occupancy) drawn
// from each session's barrier-harvested registry. Everything is emitted in
// a deterministic order so consecutive scrapes diff cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	st := s.m.Stats()

	p.Family("tpdf_serve_sessions", "Open sessions.", "gauge")
	p.Int("tpdf_serve_sessions", []obs.Label{{Key: "state", Value: "open"}}, int64(st.Sessions))
	p.Family("tpdf_serve_sessions_total", "Session lifecycle outcomes.", "counter")
	p.Int("tpdf_serve_sessions_total", []obs.Label{{Key: "state", Value: "opened"}}, st.Opened)
	p.Int("tpdf_serve_sessions_total", []obs.Label{{Key: "state", Value: "drained"}}, st.Drained)
	p.Int("tpdf_serve_sessions_total", []obs.Label{{Key: "state", Value: "failed"}}, st.Failed)

	p.Family("tpdf_serve_tenants", "Tenants with at least one open session.", "gauge")
	p.Int("tpdf_serve_tenants", nil, int64(st.Tenants))
	p.Family("tpdf_serve_admission_queue_depth", "Openers waiting for a session slot.", "gauge")
	p.Int("tpdf_serve_admission_queue_depth", nil, st.QueueDepth)
	p.Family("tpdf_serve_draining", "1 while the server is draining (healthz answers 503).", "gauge")
	draining := int64(0)
	if st.Draining {
		draining = 1
	}
	p.Int("tpdf_serve_draining", nil, draining)
	p.Family("tpdf_serve_iterations_live", "Completed iterations summed over open sessions.", "gauge")
	p.Int("tpdf_serve_iterations_live", nil, st.IterationsLive)

	p.Family("tpdf_serve_fault_events_total", "Fleet fault-tolerance events: recovered behavior panics, supervisor engine restarts, rebind aborts.", "counter")
	p.Int("tpdf_serve_fault_events_total", []obs.Label{{Key: "event", Value: "panic"}}, st.Panics)
	p.Int("tpdf_serve_fault_events_total", []obs.Label{{Key: "event", Value: "restart"}}, st.Restarts)
	p.Int("tpdf_serve_fault_events_total", []obs.Label{{Key: "event", Value: "rebind_abort"}}, st.RebindAborts)
	p.Family("tpdf_serve_sessions_recovering", "Open sessions between engine incarnations (restart backoff).", "gauge")
	p.Int("tpdf_serve_sessions_recovering", nil, int64(st.Recovering))

	p.Family("tpdf_serve_rejected_total", "Requests refused by admission control.", "counter")
	p.Int("tpdf_serve_rejected_total", []obs.Label{{Key: "reason", Value: "busy"}}, st.RejectedBusy)
	p.Int("tpdf_serve_rejected_total", []obs.Label{{Key: "reason", Value: "quota"}}, st.RejectedQuota)
	p.Int("tpdf_serve_rejected_total", []obs.Label{{Key: "reason", Value: "graph"}}, st.RejectedGraph)
	p.Int("tpdf_serve_rejected_total", []obs.Label{{Key: "reason", Value: "batch"}}, st.BatchRejected)
	p.Family("tpdf_serve_batch_jobs_total", "Admitted batch (analyze/sweep) jobs.", "counter")
	p.Int("tpdf_serve_batch_jobs_total", nil, st.BatchJobs)

	p.Family("tpdf_serve_program_cache_entries", "Distinct compiled graphs resident.", "gauge")
	p.Int("tpdf_serve_program_cache_entries", nil, int64(st.Cache.Entries))
	p.Family("tpdf_serve_program_cache_events_total", "Program cache traffic.", "counter")
	p.Int("tpdf_serve_program_cache_events_total", []obs.Label{{Key: "event", Value: "hit"}}, st.Cache.Hits)
	p.Int("tpdf_serve_program_cache_events_total", []obs.Label{{Key: "event", Value: "miss"}}, st.Cache.Misses)
	p.Int("tpdf_serve_program_cache_events_total", []obs.Label{{Key: "event", Value: "compile"}}, st.Cache.Compiles)
	p.Int("tpdf_serve_program_cache_events_total", []obs.Label{{Key: "event", Value: "rejection"}}, st.Cache.Rejected)

	if st.Durable != nil {
		d := st.Durable
		p.Family("tpdf_durable_events_total", "Durable snapshot lifecycle events.", "counter")
		p.Int("tpdf_durable_events_total", []obs.Label{{Key: "event", Value: "persist"}}, d.Snapshots)
		p.Int("tpdf_durable_events_total", []obs.Label{{Key: "event", Value: "persist_error"}}, d.PersistErrors)
		p.Int("tpdf_durable_events_total", []obs.Label{{Key: "event", Value: "torn_discarded"}}, d.TornDiscarded)
		p.Int("tpdf_durable_events_total", []obs.Label{{Key: "event", Value: "recovered"}}, d.Recovered)
		p.Int("tpdf_durable_events_total", []obs.Label{{Key: "event", Value: "recovery_failed"}}, d.RecoveryFailed)
		p.Int("tpdf_durable_events_total", []obs.Label{{Key: "event", Value: "deleted"}}, d.Deleted)
		p.Family("tpdf_durable_bytes_total", "Snapshot bytes written to the store.", "counter")
		p.Int("tpdf_durable_bytes_total", nil, d.Bytes)
		p.Family("tpdf_durable_snapshot_bytes", "Size of the most recently persisted snapshot.", "gauge")
		p.Int("tpdf_durable_snapshot_bytes", nil, d.LastSnapshotBytes)
		p.Family("tpdf_durable_persist_seconds", "Snapshot persist latency (encode + write + fsync).", "histogram")
		p.Histo("tpdf_durable_persist_seconds", nil, s.m.durable.persistLatency)
	}

	routes, hists, codes := s.obs.snapshot()
	p.Family("tpdf_serve_http_responses_total", "HTTP responses by status code.", "counter")
	statuses := make([]int, 0, len(codes))
	for c := range codes {
		statuses = append(statuses, c)
	}
	sort.Ints(statuses)
	for _, c := range statuses {
		p.Int("tpdf_serve_http_responses_total",
			[]obs.Label{{Key: "code", Value: strconv.Itoa(c)}}, codes[c])
	}
	p.Family("tpdf_serve_request_seconds", "Request latency by route pattern.", "histogram")
	for _, route := range routes {
		p.Histo("tpdf_serve_request_seconds", []obs.Label{{Key: "endpoint", Value: route}}, hists[route])
	}

	s.writeSessionMetrics(p)
	p.Flush() //nolint:errcheck // client gone is fine
}

// writeSessionMetrics emits the per-session engine series. Sessions are
// visited in ID order and each snapshot is a consistent barrier-harvested
// copy at most one transaction old.
func (s *Server) writeSessionMetrics(p *obs.PromWriter) {
	sessions := s.m.Sessions()
	type snap struct {
		sess *Session
		eng  obs.EngineSnapshot
	}
	snaps := make([]snap, 0, len(sessions))
	for _, sess := range sessions {
		snaps = append(snaps, snap{sess, sess.Metrics().EngineSnapshot()})
	}
	base := func(sess *Session) []obs.Label {
		return []obs.Label{
			{Key: "session", Value: sess.ID},
			{Key: "tenant", Value: sess.Tenant},
			{Key: "graph", Value: sess.Graph()},
		}
	}

	p.Family("tpdf_session_completed_iterations", "Transactions completed by the session.", "counter")
	for _, sn := range snaps {
		p.Int("tpdf_session_completed_iterations", base(sn.sess), sn.eng.Completed)
	}
	p.Family("tpdf_session_barriers_total", "Transaction barriers the engine crossed.", "counter")
	for _, sn := range snaps {
		p.Int("tpdf_session_barriers_total", base(sn.sess), sn.eng.Barriers)
	}
	p.Family("tpdf_session_rebinds_total", "Parameter rebinds applied at barriers.", "counter")
	for _, sn := range snaps {
		p.Int("tpdf_session_rebinds_total", base(sn.sess), sn.eng.Rebinds)
	}
	p.Family("tpdf_session_state", "Supervision state (1 for the session's current state).", "gauge")
	for _, sn := range snaps {
		p.Int("tpdf_session_state",
			append(base(sn.sess), obs.Label{Key: "state", Value: sn.sess.State().String()}), 1)
	}
	p.Family("tpdf_session_restarts_total", "Supervisor engine restarts after behavior panics.", "counter")
	for _, sn := range snaps {
		p.Int("tpdf_session_restarts_total", base(sn.sess), sn.sess.Restarts())
	}
	p.Family("tpdf_session_aborts_total", "Transactions discarded (behavior panics, rejected rebinds).", "counter")
	for _, sn := range snaps {
		p.Int("tpdf_session_aborts_total", base(sn.sess), sn.eng.Aborts)
	}
	p.Family("tpdf_session_restores_total", "Checkpoint rollbacks completed inside the engine.", "counter")
	for _, sn := range snaps {
		p.Int("tpdf_session_restores_total", base(sn.sess), sn.eng.Restores)
	}
	p.Family("tpdf_session_actor_firings_total", "Firings per actor.", "counter")
	for _, sn := range snaps {
		for _, a := range sn.eng.Actors {
			p.Int("tpdf_session_actor_firings_total",
				append(base(sn.sess), obs.Label{Key: "actor", Value: a.Name}), a.Firings)
		}
	}
	p.Family("tpdf_session_ring_occupancy", "Tokens resident in the edge ring at the last barrier.", "gauge")
	for _, sn := range snaps {
		for _, e := range sn.eng.Edges {
			p.Int("tpdf_session_ring_occupancy",
				append(base(sn.sess), obs.Label{Key: "edge", Value: e.Name}), e.Occupancy)
		}
	}
	p.Family("tpdf_session_ring_high_water", "Peak ring occupancy observed.", "gauge")
	for _, sn := range snaps {
		for _, e := range sn.eng.Edges {
			p.Int("tpdf_session_ring_high_water",
				append(base(sn.sess), obs.Label{Key: "edge", Value: e.Name}), e.HighWater)
		}
	}
	p.Family("tpdf_session_ring_capacity", "Ring capacity in tokens.", "gauge")
	for _, sn := range snaps {
		for _, e := range sn.eng.Edges {
			p.Int("tpdf_session_ring_capacity",
				append(base(sn.sess), obs.Label{Key: "edge", Value: e.Name}), e.Capacity)
		}
	}
	p.Family("tpdf_session_ring_grows_total", "Ring capacity grow events at rebinds.", "counter")
	for _, sn := range snaps {
		for _, e := range sn.eng.Edges {
			p.Int("tpdf_session_ring_grows_total",
				append(base(sn.sess), obs.Label{Key: "edge", Value: e.Name}), e.Grows)
		}
	}
}

// handleTrace exports one session's transaction journal as Chrome
// trace_event JSON (load it in chrome://tracing or Perfetto).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sess, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	sess.TraceJournal().WriteChromeTrace(w) //nolint:errcheck // client gone is fine
}

// StartAdmin exposes the debug surface — net/http/pprof and a second copy
// of /metrics — on its own listener, kept off the public port so profiling
// endpoints are reachable only where the operator points them (a loopback
// or private address). Port 0 picks a free one; the bound address is
// returned.
func (s *Server) StartAdmin(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.adminLn = ln
	s.admin = &http.Server{Handler: mux}
	go s.admin.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}
