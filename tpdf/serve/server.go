package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/tpdf"
)

// GraphSpec names the graph a request wants: a builtin by name (with
// optional constructor knobs in Params) or inline .tpdf source. Exactly
// one of Builtin/Source must be set.
type GraphSpec struct {
	Builtin string           `json:"builtin,omitempty"`
	Source  string           `json:"source,omitempty"`
	Params  map[string]int64 `json:"params,omitempty"`
}

// Resolve builds the graph the spec names.
func (gs GraphSpec) Resolve() (*tpdf.Graph, error) {
	switch {
	case gs.Builtin != "" && gs.Source != "":
		return nil, fmt.Errorf("serve: graph spec sets both builtin and source")
	case gs.Builtin != "":
		sc, err := tpdf.BuiltinScenario(gs.Builtin, gs.Params)
		if err != nil {
			return nil, err
		}
		return sc.Graph, nil
	case gs.Source != "":
		return tpdf.Parse(gs.Source)
	default:
		return nil, fmt.Errorf("serve: graph spec names neither builtin nor source")
	}
}

type openRequest struct {
	Tenant string           `json:"tenant,omitempty"`
	Graph  GraphSpec        `json:"graph"`
	Params map[string]int64 `json:"params,omitempty"`
	// Chaos requests seeded fault injection inside the session's engine;
	// honored only by servers started with -chaos.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

type openResponse struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Graph  string `json:"graph"`
}

type pumpRequest struct {
	Iterations int64            `json:"iterations"`
	Params     map[string]int64 `json:"params,omitempty"`
}

type pumpResponse struct {
	Completed  int64            `json:"completed"`
	SinkTokens map[string]int64 `json:"sink_tokens"`
}

type reconfigureRequest struct {
	Params map[string]int64 `json:"params"`
}

type closeResponse struct {
	Completed  int64            `json:"completed"`
	Firings    map[string]int64 `json:"firings,omitempty"`
	SinkTokens map[string]int64 `json:"sink_tokens,omitempty"`
}

type analyzeRequest struct {
	Graph GraphSpec `json:"graph"`
}

type analyzeResponse struct {
	Graph      string `json:"graph"`
	Consistent bool   `json:"consistent"`
	RateSafe   bool   `json:"rate_safe"`
	Live       bool   `json:"live"`
	Bounded    bool   `json:"bounded"`
	Repetition string `json:"repetition_vector,omitempty"`
	Bound      int64  `json:"buffer_bound,omitempty"`
	Report     string `json:"report"`
}

type sweepRequest struct {
	Graph      GraphSpec          `json:"graph"`
	Axes       map[string][]int64 `json:"axes"`
	Iterations int64              `json:"iterations,omitempty"`
}

type sweepPoint struct {
	Params      map[string]int64 `json:"params"`
	Time        int64            `json:"time"`
	TotalBuffer int64            `json:"total_buffer"`
}

type sweepResponse struct {
	Points []sweepPoint `json:"points"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server is the HTTP face of the service tier.
type Server struct {
	m       *Manager
	mux     *http.ServeMux
	obs     *serveObs
	http    *http.Server
	ln      net.Listener
	admin   *http.Server
	adminLn net.Listener
}

// New builds a server around a fresh Manager with the given bounds.
func New(cfg Config) *Server {
	s := &Server{m: NewManager(cfg), mux: http.NewServeMux(), obs: newServeObs()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/sessions", s.handleOpen)
	s.mux.HandleFunc("POST /v1/sessions/{id}/pump", s.handlePump)
	s.mux.HandleFunc("POST /v1/sessions/{id}/reconfigure", s.handleReconfigure)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleClose)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	return s
}

// Manager exposes the fleet for in-process callers (tests, tpdf-bench).
func (s *Server) Manager() *Manager { return s.m }

// Handler returns the instrumented HTTP handler (for tests and embedding):
// every request passes the latency/status middleware feeding /metrics.
func (s *Server) Handler() http.Handler { return s.obs.wrap(s.mux) }

// Start listens on addr (host:port, port 0 picks a free one) and serves in
// a background goroutine. The bound address is returned.
func (s *Server) Start(addr string) (string, error) {
	if s.m.storeErr != nil {
		return "", fmt.Errorf("serve: snapshot store: %w", s.m.storeErr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go s.http.Serve(ln) //nolint:errcheck // Serve always returns on Close
	if s.m.store != nil {
		// Cold-start recovery runs behind the listener: /healthz answers
		// 503 "recovering" until the fleet is rebuilt, so load balancers
		// hold traffic without the boot blocking on disk.
		s.m.recovering.Store(true)
		go s.m.Recover(context.Background())
	}
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: new admissions are refused, every session
// parks and exits at its next transaction barrier (bounded by the
// manager's DrainTimeout, then cancelled), and finally the HTTP listener
// closes once in-flight requests finish.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.m.Drain(ctx)
	if s.http != nil {
		if herr := s.http.Shutdown(ctx); err == nil {
			err = herr
		}
	}
	if s.admin != nil {
		if aerr := s.admin.Shutdown(ctx); err == nil {
			err = aerr
		}
	}
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is fine
}

// writeErr maps the sentinel error taxonomy to HTTP statuses; everything
// unrecognized is a 400 (the request named something we refuse) rather
// than a 500 (the server broke).
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrBusy), errors.Is(err, ErrQuota):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotAdmissible):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		status = http.StatusConflict
	case errors.Is(err, ErrNotDurable):
		status = http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func decode[T any](r *http.Request, into *T) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

// handleHealth answers 200 while serving and 503 "draining" once shutdown
// has begun, so load balancers stop routing new work here while in-flight
// sessions park and exit at their barriers.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.m.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.m.RecoveryActive() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Stats())
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req openRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad open request: %w", err))
		return
	}
	g, err := req.Graph.Resolve()
	if err != nil {
		writeErr(w, err)
		return
	}
	sess, err := s.m.Open(r.Context(), req.Tenant, g, req.Params, req.Chaos)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, openResponse{ID: sess.ID, Tenant: sess.Tenant, Graph: g.Name})
}

func (s *Server) handlePump(w http.ResponseWriter, r *http.Request) {
	sess, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req pumpRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad pump request: %w", err))
		return
	}
	completed, err := sess.Pump(r.Context(), req.Iterations, req.Params)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pumpResponse{Completed: completed, SinkTokens: sess.SinkTokens()})
}

func (s *Server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	sess, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req reconfigureRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad reconfigure request: %w", err))
		return
	}
	if err := sess.Reconfigure(r.Context(), req.Params); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pumpResponse{Completed: sess.Completed(), SinkTokens: sess.SinkTokens()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pumpResponse{Completed: sess.Completed(), SinkTokens: sess.SinkTokens()})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Session drains park at the next barrier, which is immediate for an
	// idle session; bound the wait regardless so a hung engine cannot pin
	// the handler.
	ctx, cancel := context.WithTimeout(r.Context(), s.m.cfg.DrainTimeout)
	defer cancel()
	sess, err := s.m.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.m.Close(ctx, id)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := closeResponse{Completed: sess.Completed(), SinkTokens: sess.SinkTokens()}
	if res != nil {
		resp.Firings = res.Firings
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad analyze request: %w", err))
		return
	}
	g, err := req.Graph.Resolve()
	if err != nil {
		writeErr(w, err)
		return
	}
	release, err := s.m.AcquireBatch(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	// The cache shares the analysis with session admission: one compile +
	// one report per distinct graph, whoever asks first.
	_, rep, err := s.m.Compile(g)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, analyzeResponse{
		Graph:      rep.GraphName,
		Consistent: rep.Consistent,
		RateSafe:   rep.RateSafe,
		Live:       rep.Live,
		Bounded:    rep.Bounded,
		Repetition: rep.RepetitionVector,
		Bound:      rep.BufferBound,
		Report:     rep.String(),
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("serve: bad sweep request: %w", err))
		return
	}
	g, err := req.Graph.Resolve()
	if err != nil {
		writeErr(w, err)
		return
	}
	grid, err := tpdf.Grid(req.Axes)
	if err != nil {
		writeErr(w, err)
		return
	}
	release, err := s.m.AcquireBatch(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	opts := []tpdf.Option{
		tpdf.WithContext(r.Context()),
		tpdf.WithParallelism(s.m.cfg.SweepParallelism),
	}
	if req.Iterations > 0 {
		opts = append(opts, tpdf.WithIterations(req.Iterations))
	}
	points, err := tpdf.Sweep(g, grid, opts...)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := sweepResponse{Points: make([]sweepPoint, len(points))}
	for i, p := range points {
		resp.Points[i] = sweepPoint{Params: p.Params, Time: p.Time, TotalBuffer: p.TotalBuffer}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ListenAndServe runs the server at addr until ctx is cancelled, then
// shuts down gracefully (sessions drain at barriers within DrainTimeout).
// This is the loop cmd/tpdf-serve runs.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	bound, err := s.Start(addr)
	if err != nil {
		return err
	}
	_ = bound
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), s.m.cfg.DrainTimeout+5*time.Second)
	defer cancel()
	return s.Shutdown(sctx)
}
