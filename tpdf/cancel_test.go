package tpdf_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/tpdf"
)

// TestStreamCancelUnparksRingWait pins the cancellation latency of actors
// parked inside the ring transport: with a capacity-1 channel and a slow
// consumer, the producer spends nearly all its time blocked in a ring
// write wait — cancelling the run context must unpark it and return
// promptly, not after the consumer drains the backlog.
func TestStreamCancelUnparksRingWait(t *testing.T) {
	g, err := tpdf.NewGraph("cancel").
		Kernel("A", 1).Kernel("B", 1).
		Connect("A[1] -> B[1]").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	behaviors := map[string]tpdf.Behavior{
		"A": func(f *tpdf.Firing) error {
			f.Produce("o0", 1)
			return nil
		},
		"B": func(f *tpdf.Firing) error {
			time.Sleep(5 * time.Millisecond)
			return nil
		},
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = tpdf.Stream(g, behaviors,
		tpdf.WithIterations(100_000),
		tpdf.WithChannelCapacity(1),
		tpdf.WithContext(ctx))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream returned %v, want context.Canceled", err)
	}
	// 100k iterations at 5ms each is ~8 minutes of backlog; a prompt
	// unpark returns within the current firing plus scheduling noise. The
	// bound is generous for loaded CI runners while still catching a
	// drain-the-backlog regression by orders of magnitude.
	if elapsed > 2*time.Second {
		t.Fatalf("Stream took %v to honor cancellation (ring-wait unpark regressed)", elapsed)
	}
}

// TestStreamCancelUnparksBarrierHook covers the service tier's park point:
// an engine blocked inside a Barrier hook (a parked session waiting for
// its next command) must still shut down promptly when the hook honors the
// run context — the engine re-checks for cancellation as soon as the hook
// returns.
func TestStreamCancelUnparksBarrierHook(t *testing.T) {
	g, err := tpdf.NewGraph("park").
		Kernel("A", 1).Kernel("B", 1).
		Connect("A[1] -> B[1]").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = tpdf.Stream(g, nil,
		tpdf.WithIterations(100_000),
		tpdf.WithContext(ctx),
		tpdf.WithBarrier(func(completed int64) (map[string]int64, bool) {
			if completed < 3 {
				return nil, false // a short pump, then park
			}
			<-ctx.Done() // parked: zero CPU until cancelled
			return nil, true
		}))
	elapsed := time.Since(start)
	// A hook that stops after observing cancellation yields a clean drain
	// (nil error); an engine that notices ctx first reports Canceled. Both
	// are prompt shutdowns — what must not happen is a hang or a late exit.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream returned %v, want nil or context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Stream took %v to exit a parked barrier hook", elapsed)
	}
}
