package tpdf

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func chainGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph("chain").
		Kernel("A", 2).
		Kernel("B", 5).
		Kernel("C", 3).
		Connect("A[1] -> B[1]").
		Connect("B[1] -> C[1]").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOptionDefaults(t *testing.T) {
	cfg := buildConfig(nil)
	if cfg.iterations != 1 {
		t.Errorf("default iterations = %d, want 1", cfg.iterations)
	}
	if cfg.processors != 0 {
		t.Errorf("default processors = %d, want 0 (unlimited)", cfg.processors)
	}
	if !cfg.controlPriority {
		t.Error("control priority should default on")
	}
	if cfg.ctx != nil || cfg.record || cfg.maxEvents != 0 || cfg.platform != nil {
		t.Error("zero-value options leaked defaults")
	}
}

func TestOptionParamMerging(t *testing.T) {
	cfg := buildConfig([]Option{
		WithParams(map[string]int64{"a": 1, "b": 2}),
		WithParam("b", 3),
	})
	if cfg.params["a"] != 1 || cfg.params["b"] != 3 {
		t.Errorf("params did not merge last-wins: %v", cfg.params)
	}
	empty := buildConfig(nil)
	if empty.env() != nil {
		t.Error("no params should mean nil env (graph defaults)")
	}
}

func TestSimulateOptionBehavior(t *testing.T) {
	g := chainGraph(t)

	// Default: one iteration, every node fires once.
	one, err := Simulate(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range one.Firings {
		if n != 1 {
			t.Errorf("node %d fired %d times, want 1", i, n)
		}
	}

	// WithIterations scales the firing budget.
	four, err := Simulate(g, WithIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	if four.Firings[0] != 4 {
		t.Errorf("4 iterations fired %d times, want 4", four.Firings[0])
	}

	// WithProcessors(1) serializes: completion is the sum of all work.
	serial, err := Simulate(g, WithProcessors(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Time != 10 {
		t.Errorf("1-PE completion t=%d, want 10 (2+5+3)", serial.Time)
	}

	// WithRecord stores the trace; default does not.
	if len(one.Events) != 0 {
		t.Error("trace recorded without WithRecord")
	}
	rec, err := Simulate(g, WithRecord())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 3 {
		t.Errorf("recorded %d events, want 3", len(rec.Events))
	}

	// WithTrace streams events.
	var streamed int
	if _, err := Simulate(g, WithTrace(func(FireEvent) { streamed++ })); err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Errorf("streamed %d events, want 3", streamed)
	}
}

func TestSimulateContextCancellation(t *testing.T) {
	g := chainGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Simulate(g, WithContext(ctx), WithIterations(1_000_000))
	if err == nil {
		t.Fatal("cancelled context should abort the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled, got %v", err)
	}

	// A live context leaves the run untouched.
	if _, err := Simulate(g, WithContext(context.Background())); err != nil {
		t.Fatalf("live context broke the run: %v", err)
	}
}

func TestScheduleOptions(t *testing.T) {
	g := Fig2()
	res, err := Schedule(g, WithParam("p", 2), WithPlatform(SMP(4)), WithProcessors(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings == 0 || len(res.Items) != res.Firings {
		t.Errorf("items/firings mismatch: %d items, %d firings", len(res.Items), res.Firings)
	}
	if res.Makespan <= 0 || res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("implausible schedule: makespan %d, utilization %f", res.Makespan, res.Utilization)
	}
	if res.CriticalPath <= 0 || res.CriticalPath > res.Makespan {
		t.Errorf("critical path %d vs makespan %d", res.CriticalPath, res.Makespan)
	}
	if !strings.Contains(res.Gantt(80), "PE") {
		t.Error("Gantt rendering lost its lanes")
	}

	// Serializing onto one PE can only lengthen the makespan.
	one, err := Schedule(g, WithParam("p", 2), WithPlatform(SMP(1)), WithProcessors(1))
	if err != nil {
		t.Fatal(err)
	}
	if one.Makespan < res.Makespan {
		t.Errorf("1-PE makespan %d < 4-PE makespan %d", one.Makespan, res.Makespan)
	}
}

func TestAnalyzeReport(t *testing.T) {
	rep := Analyze(Fig2())
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if !rep.Consistent || !rep.RateSafe || !rep.Live || !rep.Bounded {
		t.Errorf("Fig2 verdicts wrong: %+v", rep)
	}
	if !strings.Contains(rep.RepetitionVector, "2*p") {
		t.Errorf("symbolic q lost: %s", rep.RepetitionVector)
	}
	if rep.BufferBoundExpr == "" || rep.BufferBound <= 0 {
		t.Errorf("buffer bound missing: %q = %d", rep.BufferBoundExpr, rep.BufferBound)
	}
	out := rep.String()
	for _, frag := range []string{"consistency: OK", "rate safe", "bounded", "buffer bound"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report rendering missing %q:\n%s", frag, out)
		}
	}
	// WithParams moves the evaluated bound.
	big := Analyze(Fig2(), WithParam("p", 8))
	if big.BufferBound <= rep.BufferBound {
		t.Errorf("bound at p=8 (%d) should exceed default (%d)", big.BufferBound, rep.BufferBound)
	}
}
