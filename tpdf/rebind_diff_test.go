package tpdf_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/symb"
	"repro/tpdf"
)

// builtinValuations draws deterministic random valuations within every
// declared parameter's (capped) range. Graphs without parameters get the
// single empty valuation.
func builtinValuations(g *tpdf.Graph, n int, seed int64) []symb.Env {
	if len(g.Params) == 0 {
		return []symb.Env{nil}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]symb.Env, 0, n)
	for i := 0; i < n; i++ {
		env := symb.Env{}
		for _, p := range g.Params {
			lo := p.Min
			if lo < 1 {
				lo = 1
			}
			hi := p.Max
			if hi <= 0 || hi > lo+12 {
				hi = lo + 12
			}
			env[p.Name] = lo + rng.Int63n(hi-lo+1)
		}
		out = append(out, env)
	}
	return out
}

// snapshot captures the concrete graph and repetition vector a valuation
// produces, copied out of whichever path built them.
type lowSnapshot struct {
	prod, cons [][]int64
	initial    []int64
	q, r       []int64
}

func snapshotInstantiate(t *testing.T, g *tpdf.Graph, env symb.Env) lowSnapshot {
	t.Helper()
	cg, _, err := g.Instantiate(env)
	if err != nil {
		t.Fatalf("instantiate at %v: %v", env, err)
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		t.Fatalf("repetition vector at %v: %v", env, err)
	}
	var s lowSnapshot
	for ei := range cg.Edges {
		s.prod = append(s.prod, append([]int64(nil), cg.Edges[ei].Prod...))
		s.cons = append(s.cons, append([]int64(nil), cg.Edges[ei].Cons...))
		s.initial = append(s.initial, cg.Edges[ei].Initial)
	}
	s.q = append([]int64(nil), sol.Q...)
	s.r = append([]int64(nil), sol.R...)
	return s
}

func snapshotRebind(t *testing.T, prog *core.Program, env symb.Env) lowSnapshot {
	t.Helper()
	if err := prog.Rebind(env); err != nil {
		t.Fatalf("rebind at %v: %v", env, err)
	}
	cg, sol := prog.Concrete(), prog.Solution()
	var s lowSnapshot
	for ei := range cg.Edges {
		s.prod = append(s.prod, append([]int64(nil), cg.Edges[ei].Prod...))
		s.cons = append(s.cons, append([]int64(nil), cg.Edges[ei].Cons...))
		s.initial = append(s.initial, cg.Edges[ei].Initial)
	}
	s.q = append([]int64(nil), sol.Q...)
	s.r = append([]int64(nil), sol.R...)
	return s
}

// TestRebindMatchesInstantiateAllBuiltins proves the compiled-rebind path
// byte-identical to fresh instantiation over every builtin graph and
// randomized valuations: same rate tables, same initial tokens, same
// repetition vector — first sequentially through one shared program, then
// with the valuations sharded across workers each owning a program (the
// sweep topology; run under -race in CI).
func TestRebindMatchesInstantiateAllBuiltins(t *testing.T) {
	for _, name := range tpdf.BuiltinNames() {
		g, err := tpdf.Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		envs := builtinValuations(g, 6, 23)
		want := make([]lowSnapshot, len(envs))
		for i, env := range envs {
			want[i] = snapshotInstantiate(t, g, env)
		}

		// Sequential: one program revisits every valuation twice (the
		// second pass proves rebinding back is loss-free).
		prog, err := core.Compile(g)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for round := 0; round < 2; round++ {
			for i, env := range envs {
				got := snapshotRebind(t, prog, env)
				if !reflect.DeepEqual(got, want[i]) {
					t.Fatalf("%s: round %d valuation %v: rebind diverged from instantiate", name, round, env)
				}
			}
		}

		// Parallel: worker-owned programs over the same valuations.
		workers := pool.Workers(len(envs), 4)
		progs := make([]*core.Program, workers)
		got := make([]lowSnapshot, len(envs))
		err = pool.RunWorkers(len(envs), 4, func(w, i int) error {
			if progs[w] == nil {
				var err error
				if progs[w], err = core.Compile(g); err != nil {
					return err
				}
			}
			got[i] = snapshotRebind(t, progs[w], envs[i])
			return nil
		})
		if err != nil {
			t.Fatalf("%s: parallel rebind: %v", name, err)
		}
		for i := range envs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s: parallel valuation %v diverged from instantiate", name, envs[i])
			}
		}
	}
}
