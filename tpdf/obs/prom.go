package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	Key   string
	Value string
}

// PromWriter emits the Prometheus text exposition format (version 0.0.4):
// families introduced with Family (HELP/TYPE lines), samples appended with
// Sample/Histo. Errors are sticky; check Err (or the Flush result) once at
// the end.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w for exposition output.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// Family introduces a metric family. typ is "counter", "gauge" or
// "histogram"; help must not contain newlines.
func (p *PromWriter) Family(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one sample line. Emit samples of a family contiguously,
// directly after its Family call.
func (p *PromWriter) Sample(name string, labels []Label, value float64) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatValue(value))
}

// Int emits one integer-valued sample line.
func (p *PromWriter) Int(name string, labels []Label, value int64) {
	p.printf("%s%s %d\n", name, renderLabels(labels), value)
}

// Histo emits the bucket/sum/count series of one histogram under name
// (which must already have been introduced with Family(..., "histogram")).
func (p *PromWriter) Histo(name string, labels []Label, h *Histogram) {
	bounds, counts, sum, count := h.snapshot()
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		p.printf("%s_bucket%s %d\n", name, renderLabels(append(labels, Label{"le", formatValue(b)})), cum)
	}
	cum += counts[len(bounds)]
	p.printf("%s_bucket%s %d\n", name, renderLabels(append(labels, Label{"le", "+Inf"})), cum)
	p.printf("%s_sum%s %s\n", name, renderLabels(labels), formatValue(sum))
	p.printf("%s_count%s %d\n", name, renderLabels(labels), count)
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Flush drains the buffer and returns the sticky error.
func (p *PromWriter) Flush() error {
	if p.err == nil {
		p.err = p.w.Flush()
	}
	return p.err
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	if v == math.Inf(1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition parses a Prometheus text exposition and returns the
// number of sample lines, failing on malformed comment, sample or value
// syntax. It is a structural check (the subset loadgen and the serve tests
// assert), not a full openmetrics parser.
func ValidateExposition(text string) (samples int, err error) {
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				return samples, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			continue
		}
		// name{labels} value [timestamp]
		rest := line
		name := rest
		if i := strings.IndexAny(rest, "{ "); i >= 0 {
			name = rest[:i]
			if rest[i] == '{' {
				j := strings.Index(rest, "} ")
				if j < 0 {
					return samples, fmt.Errorf("line %d: unterminated labels in %q", ln+1, line)
				}
				rest = rest[j+2:]
			} else {
				rest = rest[i+1:]
			}
		} else {
			return samples, fmt.Errorf("line %d: no value in %q", ln+1, line)
		}
		if name == "" || !validMetricName(name) {
			return samples, fmt.Errorf("line %d: bad metric name %q", ln+1, name)
		}
		val := strings.Fields(rest)
		if len(val) < 1 || len(val) > 2 {
			return samples, fmt.Errorf("line %d: bad sample %q", ln+1, line)
		}
		if val[0] != "+Inf" && val[0] != "-Inf" && val[0] != "NaN" {
			if _, perr := strconv.ParseFloat(val[0], 64); perr != nil {
				return samples, fmt.Errorf("line %d: bad value %q", ln+1, val[0])
			}
		}
		samples++
	}
	return samples, nil
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(name) > 0
}
