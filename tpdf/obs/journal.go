package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/trace"
)

// EventKind classifies a journal entry.
type EventKind uint8

const (
	// EvRunStart / EvRunEnd bracket one engine run.
	EvRunStart EventKind = iota + 1
	EvRunEnd
	// EvBarrier is one transaction boundary: recorded at exit, DurNs spans
	// enter to exit and therefore includes hook time (a parked session's
	// wait for its next command is boundary time by design).
	EvBarrier
	// EvRebind is a boundary that changed parameters: DurNs is the rebind
	// cost (rate tables + schedule + ring growth), ParamsDigest the digest
	// of the new valuation.
	EvRebind
	// EvDrain is a clean stop verdict at a boundary (Barrier hook returned
	// stop).
	EvDrain
	// EvStallWarn is a watchdog near-miss: one idle window elapsed with no
	// progress; a second consecutive one fails the run (EvStall).
	EvStallWarn
	EvStall
	// EvAbort is a discarded transaction: an in-flight epoch torn down by a
	// behavior panic, or a rebind rejected by validation. Completed is the
	// checkpoint the engine rolled back to (panic) or held at (rebind),
	// Detail names the panicking node or the validation failure.
	EvAbort
	// EvRestore is a successful recovery: the engine (or a supervised serve
	// session) resumed from the checkpoint named by Completed.
	EvRestore
	// EvPersist is a durable snapshot write: the checkpoint at Completed was
	// encoded and fsynced to the session's snapshot store. DurNs is the
	// persist latency (encode + write + fsync + rename); Detail carries the
	// error text when the write failed.
	EvPersist
	// EvRecover is a cold-start recovery: a session was re-opened from its
	// newest durable snapshot, resuming at the checkpoint named by
	// Completed.
	EvRecover
)

// String names the kind for summaries and trace exports.
func (k EventKind) String() string {
	switch k {
	case EvRunStart:
		return "run_start"
	case EvRunEnd:
		return "run_end"
	case EvBarrier:
		return "barrier"
	case EvRebind:
		return "rebind"
	case EvDrain:
		return "drain"
	case EvStallWarn:
		return "stall_warn"
	case EvStall:
		return "stall"
	case EvAbort:
		return "abort"
	case EvRestore:
		return "restore"
	case EvPersist:
		return "persist"
	case EvRecover:
		return "recover"
	default:
		return "unknown"
	}
}

// Event is one fixed-size journal entry. Recording one never allocates:
// Detail must be a static or pre-built string (hot-path recorders pass
// static notes; the watchdog's slow path may format).
type Event struct {
	// TimeUnixNano is the event end time; Record stamps it when zero.
	TimeUnixNano int64
	Kind         EventKind
	// Completed is the iteration count at the boundary.
	Completed int64
	// DurNs is the event duration (barrier span, rebind cost); 0 for
	// instants.
	DurNs int64
	// ParamsDigest identifies the active valuation (rebind events).
	ParamsDigest uint64
	// Detail is a short free-form note.
	Detail string
}

// Journal is a bounded ring buffer of trace events: the newest Cap events
// are kept, older ones are overwritten, and recording is O(1) with no
// allocation — safe to leave enabled on a production session forever.
type Journal struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
	nowfn func() int64
}

// DefaultJournalCap bounds a journal built with capacity <= 0.
const DefaultJournalCap = 1024

// NewJournal returns a journal keeping the newest capacity events
// (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Record appends an event, overwriting the oldest when full. The zero
// TimeUnixNano is stamped with the current wall clock.
func (j *Journal) Record(e Event) {
	j.mu.Lock()
	if e.TimeUnixNano == 0 {
		if j.nowfn != nil {
			e.TimeUnixNano = j.nowfn()
		} else {
			e.TimeUnixNano = time.Now().UnixNano()
		}
	}
	j.buf[j.next] = e
	if j.next++; j.next == len(j.buf) {
		j.next = 0
	}
	j.total++
	j.mu.Unlock()
}

// Cap returns the journal's bound.
func (j *Journal) Cap() int { return len(j.buf) }

// Len returns how many events are currently retained.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lenLocked()
}

func (j *Journal) lenLocked() int {
	if j.total < int64(len(j.buf)) {
		return int(j.total)
	}
	return len(j.buf)
}

// Dropped returns how many events were overwritten because the bound was
// reached.
func (j *Journal) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if d := j.total - int64(len(j.buf)); d > 0 {
		return d
	}
	return 0
}

// Events returns the retained events oldest-first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.lenLocked()
	out := make([]Event, 0, n)
	start := j.next - n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}

// Reset forgets all retained events.
func (j *Journal) Reset() {
	j.mu.Lock()
	j.next, j.total = 0, 0
	for i := range j.buf {
		j.buf[i] = Event{}
	}
	j.mu.Unlock()
}

// WriteChromeTrace renders the journal as Chrome trace_event JSON (the
// array form), loadable in chrome://tracing or Perfetto: events with a
// duration become complete ("X") slices, instants become instant ("i")
// marks. Timestamps are microseconds relative to the earliest retained
// event.
func (j *Journal) WriteChromeTrace(w io.Writer) error {
	evs := j.Events()
	var t0 int64
	if len(evs) > 0 {
		t0 = evs[0].TimeUnixNano
		for _, e := range evs {
			if s := e.TimeUnixNano - e.DurNs; s < t0 {
				t0 = s
			}
		}
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range evs {
		sep := ","
		if i == len(evs)-1 {
			sep = ""
		}
		startUs := float64(e.TimeUnixNano-e.DurNs-t0) / 1e3
		var line string
		if e.DurNs > 0 {
			line = fmt.Sprintf(`  {"name":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":1,"args":{"completed":%d,"params_digest":"%016x","detail":%q}}%s`,
				e.Kind.String(), startUs, float64(e.DurNs)/1e3, e.Completed, e.ParamsDigest, e.Detail, sep)
		} else {
			line = fmt.Sprintf(`  {"name":%q,"ph":"i","s":"t","ts":%.3f,"pid":1,"tid":1,"args":{"completed":%d,"params_digest":"%016x","detail":%q}}%s`,
				e.Kind.String(), startUs, e.Completed, e.ParamsDigest, e.Detail, sep)
		}
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// Summary renders the retained events as an aligned table (the
// internal/trace renderer the rest of the tooling uses), oldest first.
func (j *Journal) Summary() string {
	evs := j.Events()
	rows := make([][]string, len(evs))
	var t0 int64
	if len(evs) > 0 {
		t0 = evs[0].TimeUnixNano
	}
	for i, e := range evs {
		digest := ""
		if e.ParamsDigest != 0 {
			digest = fmt.Sprintf("%016x", e.ParamsDigest)
		}
		rows[i] = []string{
			strconv.FormatFloat(float64(e.TimeUnixNano-t0)/1e6, 'f', 3, 64),
			e.Kind.String(),
			strconv.FormatInt(e.Completed, 10),
			strconv.FormatFloat(float64(e.DurNs)/1e6, 'f', 3, 64),
			digest,
			e.Detail,
		}
	}
	return trace.Table([]string{"t_ms", "event", "completed", "dur_ms", "params", "detail"}, rows)
}
