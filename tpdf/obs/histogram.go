package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with lock-free atomic counters,
// sized for request latencies and rendered in Prometheus exposition form
// by PromWriter.Histo. Observations are seconds; bucket bounds are
// cumulative upper bounds (le).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Int64   // nanoseconds, to stay integral under concurrency
	count  atomic.Int64
}

// defaultLatencyBounds spans 100µs to 10s, roughly logarithmic — wide
// enough for both in-process handlers and loaded fleet tails.
var defaultLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewLatencyHistogram returns a histogram with the default latency bounds.
func NewLatencyHistogram() *Histogram { return NewHistogram(defaultLatencyBounds) }

// NewHistogram returns a histogram over the given ascending upper bounds
// (seconds). The bounds slice is not copied and must not change.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// snapshot returns bounds, per-bucket counts, the sum in seconds and the
// total count, read without locking (buckets may skew by in-flight
// observations, which Prometheus tolerates).
func (h *Histogram) snapshot() (bounds []float64, counts []int64, sum float64, count int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts, float64(h.sum.Load()) / 1e9, h.count.Load()
}
