// Package obs is the observability surface of the tpdf runtime: a
// Registry of engine and simulator counters, a bounded transaction-trace
// Journal, latency Histograms, and a hand-rolled Prometheus text-exposition
// writer — everything tpdf-serve's /metrics endpoint and the facade's
// WithMetrics / WithTraceJournal options are built from.
//
// The counters follow the engine's barrier-harvest rule: actors update
// cache-line-padded private counters with plain stores on their own hot
// path (no atomics, no locks, no allocations) and the engine copies them
// into the Registry only at transaction barriers, where every actor is
// parked and the epoch WaitGroup provides the happens-before edge. Readers
// therefore see a consistent snapshot that is at most one transaction old,
// and the warm firing path stays 0 allocs/op with metrics enabled.
package obs

import "sync"

// ActorMetrics is one actor's counters as of the last harvest. Firings and
// token counts are exact; the time and park/spin/wake counters attribute
// each ring wait to the actor that performed it.
type ActorMetrics struct {
	Name string
	// Firings completed and tokens moved since the run started.
	Firings   int64
	TokensIn  int64
	TokensOut int64
	// BusyNs estimates time spent firing (consume + behavior + produce)
	// minus time blocked in ring waits; BlockedNs is the blocked share.
	// Active time is sampled at epoch granularity (one epoch in eight is
	// timed and the total scaled up), blocked time covers only actual
	// channel parks — both exclude time parked at transaction barriers,
	// and BusyNs is an estimate, not an exact measurement.
	BusyNs    int64
	BlockedNs int64
	// Parks counts ring waits that parked on a wake channel; Spins counts
	// waits resolved by spinning/yielding without a park; Wakes counts
	// wakeups this actor issued to a parked peer.
	Parks int64
	Spins int64
	Wakes int64
}

// EdgeMetrics is one edge's ring gauges as of the last harvest.
type EdgeMetrics struct {
	Name     string
	Producer string
	Consumer string
	// Capacity and Occupancy are the ring's token capacity and content at
	// the harvest barrier; HighWater is the largest occupancy ever
	// observed at a publish (including the initial-token seed).
	Capacity  int64
	Occupancy int64
	HighWater int64
	// Grows counts barrier-time capacity growths (reconfigurations whose
	// new schedule needed a larger ring).
	Grows int64
	// Blocked/park split per side: the producer waits for free space, the
	// consumer waits for published tokens.
	ProdBlockedNs int64
	ConsBlockedNs int64
	ProdParks     int64
	ConsParks     int64
}

// EngineSnapshot is the full engine view published at each transaction
// barrier.
type EngineSnapshot struct {
	// Running is true between run start and the final harvest.
	Running bool
	// Completed counts finished graph iterations; Barriers counts
	// transaction boundaries crossed (epoch dispatches).
	Completed int64
	Barriers  int64
	// Rebinds counts boundaries that changed parameters; RebindNs is the
	// total time spent rebinding (rate tables, schedule, ring growth).
	// BoundaryNs is total time in boundary work overall — hooks included,
	// so a session parked between requests accrues it.
	Rebinds    int64
	RebindNs   int64
	BoundaryNs int64
	// Aborts counts discarded transactions (behavior panics rolled back,
	// rebinds rejected by validation); Restores counts successful
	// checkpoint restores (in-engine panic recovery and resume-from-
	// checkpoint run starts).
	Aborts   int64
	Restores int64
	Actors   []ActorMetrics
	Edges    []EdgeMetrics
}

// SimSnapshot is the simulator counterpart: lightweight counters from
// token-accurate discrete-event runs (tpdf.Simulate with WithMetrics).
type SimSnapshot struct {
	Runs          int64
	Events        int64
	Firings       int64
	ClockTicks    int64
	MaxEventQueue int64
	// VirtualTime is the completion time of the last run.
	VirtualTime int64
}

// Registry is the shared rendezvous between one runtime (engine or
// simulator) and any number of readers. Writers integrate via UpdateEngine
// at barriers; readers take consistent copies via EngineSnapshot. A
// Registry is typically per-session (tpdf/serve creates one per Stream
// engine) so series never mix runs.
type Registry struct {
	mu     sync.Mutex
	engine EngineSnapshot
	sim    SimSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// UpdateEngine runs mutate with the registry locked. This is the engine's
// harvest hook: the engine keeps one long-lived closure and fills the
// snapshot in place, so a barrier-time harvest performs no allocations.
// mutate must not retain the snapshot past the call.
func (r *Registry) UpdateEngine(mutate func(*EngineSnapshot)) {
	r.mu.Lock()
	mutate(&r.engine)
	r.mu.Unlock()
}

// EngineSnapshot returns a deep copy of the last harvested engine state,
// safe to hold and read without further synchronization.
func (r *Registry) EngineSnapshot() EngineSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.engine
	s.Actors = append([]ActorMetrics(nil), r.engine.Actors...)
	s.Edges = append([]EdgeMetrics(nil), r.engine.Edges...)
	return s
}

// UpdateSim publishes simulator counters.
func (r *Registry) UpdateSim(s SimSnapshot) {
	r.mu.Lock()
	r.sim = s
	r.mu.Unlock()
}

// Sim returns the last published simulator counters.
func (r *Registry) Sim() SimSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sim
}

// ParamsDigest hashes a parameter valuation into a stable 64-bit digest,
// order-independently (per-entry FNV-1a mixed by XOR) and without
// allocating — it is safe on the engine's barrier path. Two valuations
// with the same key/value pairs digest identically; the digest is for
// change detection in traces, not cryptography.
func ParamsDigest(params map[string]int64) uint64 {
	var d uint64
	for k, v := range params {
		d ^= BindingDigest(k, v)
	}
	return d
}

// BindingDigest hashes one parameter binding. Because ParamsDigest is the
// XOR of its bindings' digests, a caller tracking a valuation can update a
// cached digest incrementally when one parameter changes —
// d ^= BindingDigest(k, old) ^ BindingDigest(k, new) — instead of
// re-iterating the whole map (the engine does this at rebind boundaries,
// where a map iteration per rebind would be a measurable overhead).
func BindingDigest(k string, v int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(v>>(8*i)) & 0xff
		h *= prime64
	}
	return h
}
