package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRegistrySnapshotIsDeepCopy(t *testing.T) {
	r := NewRegistry()
	r.UpdateEngine(func(s *EngineSnapshot) {
		s.Completed = 3
		s.Actors = append(s.Actors[:0], ActorMetrics{Name: "A", Firings: 7})
		s.Edges = append(s.Edges[:0], EdgeMetrics{Name: "A->B", Capacity: 4})
	})
	snap := r.EngineSnapshot()
	snap.Actors[0].Firings = 999
	snap.Edges[0].Capacity = 999
	again := r.EngineSnapshot()
	if again.Actors[0].Firings != 7 || again.Edges[0].Capacity != 4 {
		t.Fatalf("snapshot aliased registry state: %+v", again)
	}
	if again.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", again.Completed)
	}
}

func TestParamsDigest(t *testing.T) {
	a := ParamsDigest(map[string]int64{"p": 2, "q": 5})
	b := ParamsDigest(map[string]int64{"q": 5, "p": 2})
	if a != b {
		t.Fatalf("digest is order-dependent: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("digest of a non-empty valuation is zero")
	}
	c := ParamsDigest(map[string]int64{"p": 3, "q": 5})
	if c == a {
		t.Fatalf("digest did not change with a value change")
	}
	if ParamsDigest(nil) != 0 {
		t.Fatal("digest of nil valuation should be 0")
	}
	// Allocation-free: safe on the engine's barrier path.
	env := map[string]int64{"p": 2, "q": 5, "r": 9}
	if allocs := testing.AllocsPerRun(100, func() { ParamsDigest(env) }); allocs > 0 {
		t.Fatalf("ParamsDigest allocates: %v allocs/op", allocs)
	}
}

func TestJournalBoundAndOrder(t *testing.T) {
	j := NewJournal(4)
	var fake int64
	j.nowfn = func() int64 { fake++; return fake }
	for i := int64(1); i <= 10; i++ {
		j.Record(Event{Kind: EvBarrier, Completed: i})
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
	evs := j.Events()
	for i, e := range evs {
		if want := int64(7 + i); e.Completed != want {
			t.Fatalf("event %d Completed = %d, want %d (newest 4, oldest first)", i, e.Completed, want)
		}
	}
	j.Reset()
	if j.Len() != 0 || j.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", j.Len(), j.Dropped())
	}
}

func TestJournalRecordDoesNotAllocate(t *testing.T) {
	j := NewJournal(64)
	ev := Event{TimeUnixNano: 1, Kind: EvBarrier, Completed: 1, Detail: "static"}
	if allocs := testing.AllocsPerRun(200, func() { j.Record(ev) }); allocs > 0 {
		t.Fatalf("Record allocates: %v allocs/op", allocs)
	}
}

func TestJournalChromeTraceIsValidJSON(t *testing.T) {
	j := NewJournal(8)
	base := time.Now().UnixNano()
	j.Record(Event{TimeUnixNano: base, Kind: EvRunStart})
	j.Record(Event{TimeUnixNano: base + 2e6, Kind: EvBarrier, Completed: 1, DurNs: 1e6})
	j.Record(Event{TimeUnixNano: base + 3e6, Kind: EvRebind, Completed: 1, DurNs: 5e5, ParamsDigest: 0xabcd, Detail: `quote"and\slash`})
	j.Record(Event{TimeUnixNano: base + 4e6, Kind: EvRunEnd, Completed: 2})
	var sb strings.Builder
	if err := j.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[1]["ph"] != "X" || evs[0]["ph"] != "i" {
		t.Fatalf("phases wrong: %v / %v", evs[0]["ph"], evs[1]["ph"])
	}
	if evs[2]["name"] != "rebind" {
		t.Fatalf("name = %v, want rebind", evs[2]["name"])
	}
}

func TestJournalSummaryTable(t *testing.T) {
	j := NewJournal(8)
	j.Record(Event{TimeUnixNano: 1e6, Kind: EvBarrier, Completed: 1, DurNs: 2e6})
	j.Record(Event{TimeUnixNano: 5e6, Kind: EvRebind, Completed: 1, ParamsDigest: 0xff, Detail: "p=3"})
	s := j.Summary()
	for _, want := range []string{"event", "barrier", "rebind", "00000000000000ff", "p=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond) // bucket le=0.001
	h.Observe(5 * time.Millisecond)   // bucket le=0.01
	h.Observe(2 * time.Second)        // +Inf
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Family("lat", "latency", "histogram")
	p.Histo("lat", []Label{{"endpoint", "pump"}}, h)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_bucket{endpoint="pump",le="0.001"} 1`,
		`lat_bucket{endpoint="pump",le="0.01"} 2`,
		`lat_bucket{endpoint="pump",le="+Inf"} 3`,
		`lat_count{endpoint="pump"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if n, err := ValidateExposition(out); err != nil || n != 5 {
		t.Fatalf("ValidateExposition = %d, %v\n%s", n, err, out)
	}
}

func TestPromWriterEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Family("m", "a metric", "gauge")
	p.Int("m", []Label{{"graph", `pipe"v\1`}}, 7)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m{graph="pipe\"v\\1"} 7`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
	if _, err := ValidateExposition(sb.String()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"# BOGUS comment style\n",
		"1leading_digit 3\n",
		"m{unterminated 3\n",
		"m not-a-number\n",
	} {
		if _, err := ValidateExposition(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	if n, err := ValidateExposition("m 3.5\nm2{a=\"b\"} +Inf 123\n# HELP m x\n"); err != nil || n != 2 {
		t.Fatalf("got %d, %v", n, err)
	}
}
