package tpdf

import (
	"repro/internal/core"
)

// CompiledGraph is the immutable, shareable compile product of a graph:
// validation done, every symbolic rate lowered to compiled expression
// tables over a fixed parameter index. It holds no valuation and is never
// written after Compile returns, so one CompiledGraph may back any number
// of concurrent Stream sessions (pass it with WithCompiled): each run
// stamps its own cheap mutable rate state from the shared skeleton, paying
// the compilation cost once per graph instead of once per connection. This
// is the facade of the server tier's program cache.
type CompiledGraph struct {
	sk *core.Skeleton
}

// Compile validates the graph and lowers its rate expressions into a
// read-only CompiledGraph that Stream runs can share via WithCompiled.
// One-shot callers don't need it — Stream compiles internally — but a
// caller about to run many sessions of the same graph should compile once
// and share.
func Compile(g *Graph) (*CompiledGraph, error) {
	sk, err := core.CompileSkeleton(g)
	if err != nil {
		return nil, err
	}
	return &CompiledGraph{sk: sk}, nil
}

// Graph returns the source graph the compile product was built from.
func (c *CompiledGraph) Graph() *Graph { return c.sk.Source() }

// WithCompiled makes Stream stamp its per-run mutable program state from
// the shared compile product instead of compiling the graph itself. The
// graph passed to Stream must be the one the CompiledGraph was compiled
// from (or nil to use c.Graph()). Results are byte-identical to a run
// that compiled freshly; only the setup cost changes. Other entry points
// ignore this option.
func WithCompiled(c *CompiledGraph) Option {
	return func(cfg *config) { cfg.compiled = c }
}

// WithBarrier installs a transaction-boundary hook on Stream, the
// server-grade generalization of WithReconfigure: the hook runs at every
// boundary including before the first iteration (completed = 0, 1, 2, ...)
// and returns the parameter values to apply plus a stop verdict. Returning
// stop = true drains the run cleanly at the quiescent boundary — parked
// actors, leftover tokens reported in the Result, no error — which is how
// a long-running session ends at a barrier instead of being cancelled
// mid-iteration. The hook may block (a parked session waits here for its
// next command) without tripping the stall watchdog, but a blocking hook
// must watch its own cancellation signal and return stop: the engine
// cannot interrupt user code. Mutually exclusive with WithReconfigure.
func WithBarrier(fn func(completed int64) (params map[string]int64, stop bool)) Option {
	return func(cfg *config) { cfg.barrier = fn }
}
