package tpdf

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/symb"
)

// SafetyVerdict is the rate-safety result for one control actor
// (Definition 5).
type SafetyVerdict struct {
	// Control is the control actor's name.
	Control string
	// Area lists the kernels whose topology the actor controls.
	Area []string
	// Local renders the local solution of the area, when one was derived.
	Local string
	// Safe is true when the actor fires exactly once per local iteration.
	Safe bool
	// Err explains an unsafe or unverifiable actor.
	Err error
}

// CycleVerdict is the liveness result for one cycle of the graph (§III-C).
type CycleVerdict struct {
	Members []string
	// Live reports whether a local schedule exists at every probed
	// valuation; LocalSchedule renders it (e.g. "(B C C B)").
	Live          bool
	LocalSchedule string
	Err           error
}

// Report consolidates the complete §III static-analysis chain plus the
// buffer bound: one call, one struct, one error.
type Report struct {
	GraphName string
	// Consistent is the Theorem 1 verdict; RepetitionVector renders the
	// symbolic vector q and Schedule a single-appearance schedule for it.
	Consistent       bool
	RepetitionVector string
	Schedule         string
	// RateSafe aggregates Safety (every control actor fires exactly once
	// per local iteration of its area).
	RateSafe bool
	Safety   []SafetyVerdict
	// Live aggregates Cycles (every cycle admits a local schedule).
	Live   bool
	Cycles []CycleVerdict
	// Bounded is the Theorem 2 verdict: a consistent, safe and live TPDF
	// graph returns to its initial state each iteration and runs in
	// bounded memory.
	Bounded bool
	// BufferBoundExpr is the symbolic per-iteration buffer requirement
	// (the sum of per-edge traffic plus initial tokens); BufferBound is
	// its value at the analysis parameter valuation.
	BufferBoundExpr string
	BufferBound     int64
	// Err holds the first fatal analysis error (e.g. inconsistency).
	Err error

	clustered string
}

// Analyze runs rate consistency, rate safety, liveness and boundedness on
// the graph and derives its symbolic buffer bound. Probing valuations are
// the parameter defaults and declared range corners, plus any
// WithProbeEnvs; WithParams sets the valuation at which BufferBound is
// evaluated.
func Analyze(g *Graph, opts ...Option) *Report {
	cfg := buildConfig(opts)
	extra := make([]symb.Env, 0, len(cfg.probeEnvs))
	for _, e := range cfg.probeEnvs {
		extra = append(extra, symb.Env(e))
	}
	in := analysis.AnalyzeParallel(g, cfg.parallel, extra...)

	rep := &Report{
		GraphName:  g.Name,
		Consistent: in.Consistent,
		RateSafe:   in.RateSafe,
		Live:       in.Live,
		Bounded:    in.Bounded,
		Err:        in.Err,
	}
	if in.Solution != nil {
		rep.RepetitionVector = in.Solution.QString()
		rep.Schedule = in.Solution.ScheduleString()

		bound := analysis.SymbolicBufferBound(g, in.Solution, nil)
		rep.BufferBoundExpr = bound.String()
		env := symb.Env{}
		for k, v := range g.DefaultEnv() {
			env[k] = v
		}
		for k, v := range cfg.params {
			env[k] = v
		}
		if v, err := bound.EvalInt(env, 1); err == nil {
			rep.BufferBound = v
		}
	}
	for _, s := range in.Safety {
		v := SafetyVerdict{
			Control: g.Nodes[s.Ctrl].Name,
			Area:    analysis.Names(g, s.Area.Members),
			Safe:    s.Err == nil,
			Err:     s.Err,
		}
		if s.Local != nil {
			v.Local = s.Local.LocalString(g)
		}
		rep.Safety = append(rep.Safety, v)
	}
	if in.Liveness != nil {
		for i := range in.Liveness.Cycles {
			c := &in.Liveness.Cycles[i]
			rep.Cycles = append(rep.Cycles, CycleVerdict{
				Members:       analysis.Names(g, c.Members),
				Live:          c.Live,
				LocalSchedule: c.LocalString(g),
				Err:           c.Err,
			})
		}
		if len(in.Liveness.Cycles) > 0 && in.Solution != nil {
			rep.clustered = analysis.ClusteredScheduleString(g, in.Solution, in.Liveness)
		}
	}
	return rep
}

// String renders the full report as tpdf-analyze prints it.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TPDF analysis of %q\n", r.GraphName)
	if r.Err != nil {
		fmt.Fprintf(&b, "  FATAL: %v\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  consistency: OK, q = %s\n", r.RepetitionVector)
	fmt.Fprintf(&b, "  schedule:    %s\n", r.Schedule)
	for _, s := range r.Safety {
		fmt.Fprintf(&b, "  control %s: area {%s}", s.Control, strings.Join(s.Area, ","))
		if s.Local != "" {
			fmt.Fprintf(&b, ", local %s", s.Local)
		}
		if s.Err != nil {
			fmt.Fprintf(&b, " — UNSAFE: %v", s.Err)
		} else {
			b.WriteString(" — rate safe")
		}
		b.WriteByte('\n')
	}
	if len(r.Cycles) == 0 {
		b.WriteString("  liveness:    acyclic — live\n")
	} else {
		for _, c := range r.Cycles {
			fmt.Fprintf(&b, "  cycle {%s}: ", strings.Join(c.Members, ","))
			if c.Live {
				fmt.Fprintf(&b, "live, local schedule %s\n", c.LocalSchedule)
			} else {
				fmt.Fprintf(&b, "DEADLOCK: %v\n", c.Err)
			}
		}
		fmt.Fprintf(&b, "  clustered:   %s\n", r.clustered)
	}
	verdict := "NOT BOUNDED"
	if r.Bounded {
		verdict = "bounded (Theorem 2: returns to initial state each iteration)"
	}
	fmt.Fprintf(&b, "  boundedness: %s\n", verdict)
	if r.BufferBoundExpr != "" {
		fmt.Fprintf(&b, "  buffer bound: %s = %d tokens/iteration\n", r.BufferBoundExpr, r.BufferBound)
	}
	return b.String()
}
