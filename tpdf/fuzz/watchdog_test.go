package fuzz

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/tpdf"
)

// TestWatchdogOnGeneratedDeadlocks covers the stall watchdog over the
// generated deadlock-prone family: under a capacity-1 override every
// DeadlockCase graph must trip the watchdog with a diagnostic that names
// a stalled actor and the ring occupancy, the failed run must release its
// goroutines (the engine stays drainable), and the same graph must run
// clean at default capacities.
func TestWatchdogOnGeneratedDeadlocks(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 4
	}
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, victim := DeadlockCase(seed)
			sinks := SinkNodes(g)

			before := runtime.NumGoroutine()
			rec := newRecorder(sinks)
			_, err := tpdf.Stream(g, rec.behaviors(),
				tpdf.WithIterations(4),
				tpdf.WithChannelCapacity(1),
				tpdf.WithStallTimeout(25*time.Millisecond))
			if err == nil {
				t.Fatalf("seed %d: capacity-1 run completed; want a deadlock", seed)
			}
			msg := err.Error()
			if !strings.Contains(msg, "deadlock") {
				t.Fatalf("seed %d: error is not a deadlock diagnostic: %v", seed, err)
			}
			if !strings.Contains(msg, "ring occupancy:") {
				t.Fatalf("seed %d: diagnostic lacks ring occupancy: %v", seed, err)
			}
			if !strings.Contains(msg, "actor ") {
				t.Fatalf("seed %d: diagnostic names no stalled actor: %v", seed, err)
			}
			// The fatal clique always involves the diamond: its member must
			// appear somewhere in the diagnostic (as a blocked actor or on a
			// reported edge endpoint).
			if !strings.Contains(msg, victim) && !strings.Contains(msg, "A") {
				t.Fatalf("seed %d: diagnostic names neither %q nor the diamond: %v", seed, victim, err)
			}

			// Drainability: the failed run must have torn down its actor
			// goroutines — a leaked engine would strand them parked forever.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if after := runtime.NumGoroutine(); after > before+2 {
				t.Fatalf("seed %d: failed run leaked goroutines: %d -> %d", seed, before, after)
			}

			// And the graph itself is fine: default capacities run clean.
			rec2 := newRecorder(sinks)
			if _, err := tpdf.Stream(g, rec2.behaviors(), tpdf.WithIterations(4)); err != nil {
				t.Fatalf("seed %d: default-capacity run failed: %v", seed, err)
			}
		})
	}
}
