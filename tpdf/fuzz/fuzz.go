// Package fuzz is the property-based testing surface of the TPDF
// reproduction: seeded generation of valid graphs and execution
// schedules, and a differential harness that runs each generated case
// through every execution tier and asserts the engine's cross-tier
// invariants.
//
// A Case pairs one generated graph with one generated schedule
// (iterations, base valuation, rebinds, pump cadence, fault sites, crash
// point). Check runs the case through six invariant pairs:
//
//  1. Simulate ≡ Execute ≡ Stream (firings, final tokens, sink output)
//  2. Compile+Rebind ≡ fresh Instantiate (rate tables, repetition vector)
//  3. checkpoint/Resume ≡ uninterrupted
//  4. panic-recovery ≡ fault-free reference
//  5. durable snapshot encode ∘ decode ∘ restore ≡ identity
//  6. shared-Skeleton stamping ≡ per-session compile
//
// Everything is deterministic by seed: a failing seed reproduces its
// failure exactly, Shrink bisects it to a smaller case that still fails,
// and the shrunk case lands in testdata/corpus as a pair of plain-text
// files (graph + schedule) replayed by the normal test job forever after.
//
// See doc.go §Testing at the repository root for how to run the sweep,
// grow the corpus, and the seeding rules that keep all of this
// reproducible.
package fuzz

import (
	"fmt"

	"repro/internal/gen"
	"repro/tpdf"
)

// Re-exported generator configuration and schedule types; see
// internal/gen for field documentation.
type (
	// GraphConfig bounds graph generation.
	GraphConfig = gen.GraphConfig
	// ScheduleConfig bounds schedule generation.
	ScheduleConfig = gen.ScheduleConfig
	// Schedule is a generated execution plan: iterations, base valuation,
	// rebinds, pump cadence, fault sites and crash point.
	Schedule = gen.Schedule
	// Rebind is one scheduled reconfiguration within a Schedule.
	Rebind = gen.Rebind
	// FaultSite is one scheduled behavior panic within a Schedule.
	FaultSite = gen.FaultSite
)

// Graph deterministically generates a valid TPDF graph for seed: it
// parses from its own Format text, is consistent, live and Theorem
// 2-bounded at every valuation in its declared parameter ranges.
func Graph(seed int64, cfg GraphConfig) *tpdf.Graph { return gen.Graph(seed, cfg) }

// NewSchedule deterministically generates an execution schedule for g.
func NewSchedule(seed int64, g *tpdf.Graph, cfg ScheduleConfig) *Schedule {
	return gen.NewSchedule(seed, g, cfg)
}

// ParseSchedule parses a schedule's canonical text form (corpus files).
func ParseSchedule(src string) (*Schedule, error) { return gen.ParseSchedule(src) }

// DeadlockCase generates a graph that deadlocks under a channel-capacity
// override of 1 but runs fine at default capacities, plus the name of a
// node inside the deadlocked clique — the fixture family for
// stall-watchdog tests.
func DeadlockCase(seed int64) (*tpdf.Graph, string) { return gen.DeadlockCase(seed) }

// SinkNodes lists the nodes the harness attaches recording behaviors to:
// the graph's sinks, or every node when a cycle leaves no sinks.
func SinkNodes(g *tpdf.Graph) []string { return gen.SinkNodes(g) }

// Case is one generated differential-test case: a graph and a schedule
// to drive it with.
type Case struct {
	// Seed generated the case (0 for cases loaded from corpus files).
	Seed     int64
	Graph    *tpdf.Graph
	Schedule *Schedule
	// fromSeed marks seed-generated cases: only those can shrink their
	// topology by rerunning the generator at a smaller node count.
	fromSeed bool
}

// NewCase generates the case for a seed: graph and schedule drawn with
// default configs from the same seed.
func NewCase(seed int64) *Case {
	g := gen.Graph(seed, GraphConfig{})
	return &Case{Seed: seed, Graph: g, Schedule: gen.NewSchedule(seed, g, ScheduleConfig{}), fromSeed: true}
}

// String identifies the case in failure output.
func (c *Case) String() string {
	return fmt.Sprintf("case seed=%d graph=%s iters=%d", c.Seed, c.Graph.Name, c.Schedule.Iterations)
}
