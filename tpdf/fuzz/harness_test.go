package fuzz

import (
	"fmt"
	"path/filepath"
	"testing"
)

// corpusDir is the committed regression corpus, shared with the repo-root
// testdata tree so counterexamples are visible outside this package.
var corpusDir = filepath.Join("..", "..", "testdata", "corpus")

// sweepSize returns the number of generated cases the differential sweep
// covers: the CI fuzz job runs the full battery (>= 100 cases, under
// -race); -short keeps the default test job quick.
func sweepSize() int64 {
	if testing.Short() {
		return 25
	}
	return 120
}

// TestGeneratedSweep is the tentpole: every generated (graph, schedule)
// case must pass all six cross-tier invariants. On failure the case is
// shrunk (same-invariant-preserving greedy reduction) and written to the
// corpus, so the counterexample is committed with the fix and replays
// forever after.
func TestGeneratedSweep(t *testing.T) {
	n := sweepSize()
	for seed := int64(1); seed <= n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			c := NewCase(seed)
			err := Check(c)
			if err == nil {
				return
			}
			shrunk := Shrink(c, 16)
			name := fmt.Sprintf("shrunk_seed%d", seed)
			if werr := WriteCase(corpusDir, name, shrunk); werr != nil {
				t.Logf("could not write shrunk counterexample: %v", werr)
			} else {
				t.Logf("shrunk counterexample written to %s/%s.{tpdf,schedule}", corpusDir, name)
			}
			t.Fatalf("%v failed: %v\nshrunk to: %v (%v)", c, err, shrunk, Check(shrunk))
		})
	}
}

// TestCorpusReplay replays every committed counterexample through the
// full invariant battery — the permanent regression net.
func TestCorpusReplay(t *testing.T) {
	entries, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("corpus is empty; at least the seeded entries should exist")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			if err := Check(e.Case); err != nil {
				t.Fatalf("corpus case %s regressed: %v", e.Name, err)
			}
		})
	}
}

// TestCaseDeterminism pins the acceptance criterion end to end: the same
// seed yields byte-identical graph text and schedule text through the
// public facade.
func TestCaseDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := NewCase(seed), NewCase(seed)
		if fmtA, fmtB := format(a), format(b); fmtA != fmtB {
			t.Fatalf("seed %d: case not deterministic:\n%s\n---\n%s", seed, fmtA, fmtB)
		}
	}
}

func format(c *Case) string {
	return fmt.Sprintf("%s\n%s", c.Graph.Name, c.Schedule.String())
}

// TestShrinkOnSyntheticFailure proves the shrinker contract on a case
// whose "failure" is injected: reductions are only adopted while the
// failure predicate holds, and the result is no larger than the input.
func TestShrinkInvariantExtraction(t *testing.T) {
	if got := Invariant(nil); got != "" {
		t.Fatalf("Invariant(nil) = %q", got)
	}
	if got := Invariant(fmt.Errorf("tiers: boom")); got != "tiers" {
		t.Fatalf("Invariant(tiers error) = %q", got)
	}
	if got := Invariant(fmt.Errorf("nonsense without colon")); got != "" {
		t.Fatalf("Invariant(unstructured) = %q", got)
	}
}
