package fuzz

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/symb"
	"repro/tpdf"
)

// Check runs the case through every invariant pair and returns the first
// violation, wrapped with the invariant's name ("tiers: ...",
// "recovery: ..."). A nil return means the case passed all six.
func Check(c *Case) error {
	for _, ch := range invariants {
		if err := ch.fn(c); err != nil {
			return fmt.Errorf("%s: %w", ch.name, err)
		}
	}
	return nil
}

// invariants is the fixed check battery, in dependency-free order. The
// names are the stable vocabulary failure messages and shrinking use.
var invariants = []struct {
	name string
	fn   func(*Case) error
}{
	{"tiers", CheckTiers},
	{"rebind", CheckRebind},
	{"resume", CheckResume},
	{"recovery", CheckRecovery},
	{"durable", CheckDurable},
	{"skeleton", CheckSkeleton},
}

// InvariantNames lists the invariant vocabulary in check order.
func InvariantNames() []string {
	out := make([]string, len(invariants))
	for i, ch := range invariants {
		out[i] = ch.name
	}
	return out
}

// recorder is the harness's observable output: each sink node appends its
// per-firing consumed-token count to its own sequence. Its checkpoint
// snapshot is a []any of []int64 in sorted sink order — the durable
// codec's value vocabulary, so recorded state survives encode/decode.
type recorder struct {
	sinks []string // sorted
	seq   map[string][]int64
}

func newRecorder(sinks []string) *recorder {
	sorted := append([]string(nil), sinks...)
	sort.Strings(sorted)
	r := &recorder{sinks: sorted, seq: make(map[string][]int64, len(sorted))}
	for _, s := range sorted {
		r.seq[s] = nil
	}
	return r
}

func (r *recorder) behaviors() map[string]tpdf.Behavior {
	b := make(map[string]tpdf.Behavior, len(r.sinks))
	for _, name := range r.sinks {
		name := name
		b[name] = func(f *tpdf.Firing) error {
			n := int64(0)
			for _, vals := range f.In {
				n += int64(len(vals))
			}
			r.seq[name] = append(r.seq[name], n)
			return nil
		}
	}
	return b
}

func (r *recorder) snapshot() any {
	out := make([]any, len(r.sinks))
	for i, s := range r.sinks {
		out[i] = append([]int64(nil), r.seq[s]...)
	}
	return out
}

func (r *recorder) restore(u any) {
	vals := u.([]any)
	for i, s := range r.sinks {
		r.seq[s] = append(r.seq[s][:0:0], vals[i].([]int64)...)
	}
}

// reconfigure turns the schedule's rebind list into a Stream reconfigure
// plan: a pure function of the completed count, so resumed and reference
// runs follow the same parameter trajectory. Nil without rebinds.
func (c *Case) reconfigure() func(completed int64) map[string]int64 {
	if len(c.Schedule.Rebinds) == 0 {
		return nil
	}
	byAt := make(map[int64]map[string]int64, len(c.Schedule.Rebinds))
	for _, rb := range c.Schedule.Rebinds {
		byAt[rb.At] = rb.Params
	}
	return func(completed int64) map[string]int64 { return byAt[completed] }
}

func envOf(m map[string]int64) symb.Env {
	env := make(symb.Env, len(m))
	for k, v := range m {
		env[k] = v
	}
	return env
}

func copyParams(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// CheckTiers asserts invariant 1: Simulate, Execute and Stream agree at
// the base valuation — same per-node firing counts, same per-edge final
// token counts, and (Execute vs Stream) identical remaining payloads and
// sink observation sequences.
func CheckTiers(c *Case) error {
	g, s := c.Graph, c.Schedule
	sinks := SinkNodes(g)
	base := tpdf.WithParams(s.Base)
	iters := tpdf.WithIterations(s.Iterations)

	execRec := newRecorder(sinks)
	execRes, err := tpdf.Execute(g, execRec.behaviors(), base, iters)
	if err != nil {
		return fmt.Errorf("execute: %w", err)
	}
	streamRec := newRecorder(sinks)
	streamRes, err := tpdf.Stream(g, streamRec.behaviors(), base, iters)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if !reflect.DeepEqual(execRes.Firings, streamRes.Firings) {
		return fmt.Errorf("firings: Execute %v, Stream %v", execRes.Firings, streamRes.Firings)
	}
	if !reflect.DeepEqual(execRes.Remaining, streamRes.Remaining) {
		return fmt.Errorf("remaining: Execute %v, Stream %v", execRes.Remaining, streamRes.Remaining)
	}
	if !reflect.DeepEqual(execRec.seq, streamRec.seq) {
		return fmt.Errorf("sink sequences: Execute %v, Stream %v", execRec.seq, streamRec.seq)
	}

	simRes, err := tpdf.Simulate(g, base, iters)
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}
	for ni, n := range g.Nodes {
		if simRes.Firings[ni] != execRes.Firings[n.Name] {
			return fmt.Errorf("node %s: Simulate fired %d, Execute %d",
				n.Name, simRes.Firings[ni], execRes.Firings[n.Name])
		}
	}
	_, low, err := g.Instantiate(envOf(s.Base))
	if err != nil {
		return fmt.Errorf("instantiate: %w", err)
	}
	for ei := range g.Edges {
		simTokens := simRes.Final[low.EdgeOf[ei]]
		execTokens := int64(len(execRes.Remaining[g.Edges[ei].Name]))
		if simTokens != execTokens {
			return fmt.Errorf("edge %s: Simulate left %d tokens, Execute %d",
				g.Edges[ei].Name, simTokens, execTokens)
		}
	}
	return nil
}

// lowSnapshot captures the concrete rate tables and repetition vector a
// valuation produces, whichever path built them.
type lowSnapshot struct {
	prod, cons [][]int64
	initial    []int64
	q, r       []int64
}

func snapInstantiate(g *tpdf.Graph, env symb.Env) (lowSnapshot, error) {
	cg, _, err := g.Instantiate(env)
	if err != nil {
		return lowSnapshot{}, fmt.Errorf("instantiate at %v: %w", env, err)
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return lowSnapshot{}, fmt.Errorf("repetition vector at %v: %w", env, err)
	}
	var s lowSnapshot
	for ei := range cg.Edges {
		s.prod = append(s.prod, append([]int64(nil), cg.Edges[ei].Prod...))
		s.cons = append(s.cons, append([]int64(nil), cg.Edges[ei].Cons...))
		s.initial = append(s.initial, cg.Edges[ei].Initial)
	}
	s.q = append([]int64(nil), sol.Q...)
	s.r = append([]int64(nil), sol.R...)
	return s, nil
}

func snapRebind(prog *core.Program, env symb.Env) (lowSnapshot, error) {
	if err := prog.Rebind(env); err != nil {
		return lowSnapshot{}, fmt.Errorf("rebind at %v: %w", env, err)
	}
	cg, sol := prog.Concrete(), prog.Solution()
	var s lowSnapshot
	for ei := range cg.Edges {
		s.prod = append(s.prod, append([]int64(nil), cg.Edges[ei].Prod...))
		s.cons = append(s.cons, append([]int64(nil), cg.Edges[ei].Cons...))
		s.initial = append(s.initial, cg.Edges[ei].Initial)
	}
	s.q = append([]int64(nil), sol.Q...)
	s.r = append([]int64(nil), sol.R...)
	return s, nil
}

// CheckRebind asserts invariant 2: in-place Rebind through one compiled
// program matches fresh Instantiate at the base valuation and at every
// valuation the schedule's rebinds walk through — twice, so rebinding
// back over visited valuations is loss-free.
func CheckRebind(c *Case) error {
	g, s := c.Graph, c.Schedule
	envs := []symb.Env{envOf(s.Base)}
	cur := copyParams(s.Base)
	for _, rb := range s.Rebinds {
		for k, v := range rb.Params {
			cur[k] = v
		}
		envs = append(envs, envOf(cur))
	}
	prog, err := core.Compile(g)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	for round := 0; round < 2; round++ {
		for _, env := range envs {
			want, err := snapInstantiate(g, env)
			if err != nil {
				return err
			}
			got, err := snapRebind(prog, env)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("round %d valuation %v: rebind diverged from instantiate:\nrebind      %+v\ninstantiate %+v",
					round, env, got, want)
			}
		}
	}
	return nil
}

// baseOpts assembles the option set shared by every Stream leg of a
// stateful check: base valuation, user-state snapshotting, and the
// schedule's reconfigure plan when it has one.
func (c *Case) baseOpts(rec *recorder, extra ...tpdf.Option) []tpdf.Option {
	o := []tpdf.Option{
		tpdf.WithParams(c.Schedule.Base),
		tpdf.WithUserState(rec.snapshot, rec.restore),
	}
	if reconf := c.reconfigure(); reconf != nil {
		o = append(o, tpdf.WithReconfigure(reconf))
	}
	return append(o, extra...)
}

func compareRuns(label string, got, want *tpdf.ExecResult, gotSeq, wantSeq map[string][]int64) error {
	if !reflect.DeepEqual(got.Firings, want.Firings) {
		return fmt.Errorf("%s: firings diverged:\n got %v\nwant %v", label, got.Firings, want.Firings)
	}
	if !reflect.DeepEqual(got.Remaining, want.Remaining) {
		return fmt.Errorf("%s: remaining tokens diverged:\n got %v\nwant %v", label, got.Remaining, want.Remaining)
	}
	if !reflect.DeepEqual(gotSeq, wantSeq) {
		return fmt.Errorf("%s: sink sequences diverged:\n got %v\nwant %v", label, gotSeq, wantSeq)
	}
	return nil
}

// CheckResume asserts invariant 3: a run stopped at a mid-point
// checkpoint and resumed in a fresh engine is byte-identical to one
// uninterrupted run — across rebind boundaries, since the reconfigure
// plan is a pure function of the completed count. Trivially true (and
// skipped) for single-iteration schedules.
func CheckResume(c *Case) error {
	g, s := c.Graph, c.Schedule
	if s.Iterations < 2 {
		return nil
	}
	stopAt := s.Iterations / 2
	sinks := SinkNodes(g)

	refRec := newRecorder(sinks)
	want, err := tpdf.Stream(g, refRec.behaviors(),
		c.baseOpts(refRec, tpdf.WithIterations(s.Iterations))...)
	if err != nil {
		return fmt.Errorf("uninterrupted run: %w", err)
	}

	var saved *tpdf.Checkpoint
	legRec := newRecorder(sinks)
	if _, err := tpdf.Stream(g, legRec.behaviors(),
		c.baseOpts(legRec,
			tpdf.WithIterations(stopAt),
			tpdf.WithCheckpoints(func(ck *tpdf.Checkpoint) {
				if ck.Completed == stopAt {
					saved = ck.Clone()
				}
			}))...); err != nil {
		return fmt.Errorf("first leg: %w", err)
	}
	if saved == nil {
		return fmt.Errorf("no checkpoint captured at %d", stopAt)
	}

	resRec := newRecorder(sinks)
	got, err := tpdf.Stream(g, resRec.behaviors(),
		c.baseOpts(resRec, tpdf.WithIterations(s.Iterations), tpdf.WithResume(saved))...)
	if err != nil {
		return fmt.Errorf("resumed run: %w", err)
	}
	return compareRuns("resume vs uninterrupted", got, want, resRec.seq, refRec.seq)
}

// faults materializes the schedule's fault sites as an injection plan:
// the shared half (rebind aborts — they change the parameter trajectory,
// so the reference must share them) and the recovered-difference half
// (behavior panics). Aborts are dropped when the case cannot rebind.
func (c *Case) faults() (panics, shared []faultinject.Fault) {
	for _, p := range c.Schedule.Panics {
		panics = append(panics, faultinject.Fault{Kind: faultinject.KindPanic, Node: p.Node, K: p.K})
	}
	if c.reconfigure() != nil {
		for _, at := range c.Schedule.RebindAborts {
			shared = append(shared, faultinject.Fault{Kind: faultinject.KindRebindAbort, K: at})
		}
	}
	return panics, shared
}

// CheckRecovery asserts invariant 4: a run whose behaviors panic at the
// schedule's fault sites, recovered by checkpoint rollback, is
// byte-identical to a fault-free reference sharing the same rebind-abort
// schedule — aborted transactions leave no trace. Skipped when the
// schedule injects nothing.
func CheckRecovery(c *Case) error {
	g, s := c.Graph, c.Schedule
	panics, shared := c.faults()
	if len(panics) == 0 && len(shared) == 0 {
		return nil
	}
	sinks := SinkNodes(g)

	run := func(withPanics bool) (*tpdf.ExecResult, map[string][]int64, error) {
		rec := newRecorder(sinks)
		faults := shared
		if withPanics {
			faults = append(append([]faultinject.Fault(nil), panics...), shared...)
		}
		opts := []tpdf.Option{
			tpdf.WithIterations(s.Iterations),
			tpdf.WithFaultPlan(faultinject.New(faults...)),
			tpdf.WithRebindAbortHandler(func(error) {}),
		}
		if withPanics {
			opts = append(opts, tpdf.WithPanicRecovery(len(panics)+1))
		} else {
			opts = append(opts, tpdf.WithCheckpoints(nil))
		}
		res, err := tpdf.Stream(g, rec.behaviors(), c.baseOpts(rec, opts...)...)
		return res, rec.seq, err
	}

	want, wantSeq, err := run(false)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	got, gotSeq, err := run(true)
	if err != nil {
		return fmt.Errorf("recovered run: %w", err)
	}
	return compareRuns("recovery vs reference", got, want, gotSeq, wantSeq)
}

// CheckDurable asserts invariant 5: a checkpoint pushed through the
// durable codec — encode, decode, re-encode byte-identical — and resumed
// on a graph recompiled from the snapshot's own recorded text lands
// exactly where an uninterrupted run does. This is the cold-recovery
// path with the store's file layer factored out.
func CheckDurable(c *Case) error {
	g, s := c.Graph, c.Schedule
	sinks := SinkNodes(g)
	stopAt := s.Iterations / 2
	if stopAt < 1 {
		stopAt = s.Iterations
	}

	refRec := newRecorder(sinks)
	want, err := tpdf.Stream(g, refRec.behaviors(),
		c.baseOpts(refRec, tpdf.WithIterations(s.Iterations))...)
	if err != nil {
		return fmt.Errorf("uninterrupted run: %w", err)
	}

	var saved *tpdf.Checkpoint
	legRec := newRecorder(sinks)
	if _, err := tpdf.Stream(g, legRec.behaviors(),
		c.baseOpts(legRec,
			tpdf.WithIterations(stopAt),
			tpdf.WithCheckpoints(func(ck *tpdf.Checkpoint) {
				if ck.Completed == stopAt {
					saved = ck.Clone()
				}
			}))...); err != nil {
		return fmt.Errorf("first leg: %w", err)
	}
	if saved == nil {
		return fmt.Errorf("no checkpoint captured at %d", stopAt)
	}

	snap := &durable.Snapshot{
		SessionID:  "fuzz",
		Tenant:     "fuzz",
		GraphText:  tpdf.Format(g),
		Checkpoint: saved,
	}
	enc, err := durable.Encode(nil, snap)
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	dec, err := durable.Decode(enc)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	enc2, err := durable.Encode(nil, dec)
	if err != nil {
		return fmt.Errorf("re-encode: %w", err)
	}
	if !bytes.Equal(enc, enc2) {
		return fmt.Errorf("encode ∘ decode not a fixpoint: %d bytes vs %d", len(enc), len(enc2))
	}
	if dec.GraphText != snap.GraphText {
		return fmt.Errorf("graph text did not survive the codec")
	}
	cold, err := tpdf.Parse(dec.GraphText)
	if err != nil {
		return fmt.Errorf("recorded graph text does not parse: %w", err)
	}

	resRec := newRecorder(sinks)
	got, err := tpdf.Stream(cold, resRec.behaviors(),
		c.baseOpts(resRec, tpdf.WithIterations(s.Iterations), tpdf.WithResume(dec.Checkpoint))...)
	if err != nil {
		return fmt.Errorf("resume from decoded snapshot: %w", err)
	}
	return compareRuns("durable resume vs uninterrupted", got, want, resRec.seq, refRec.seq)
}

// CheckSkeleton asserts invariant 6: two concurrent runs stamped from
// one shared compiled skeleton produce output byte-identical to a run
// that compiled freshly.
func CheckSkeleton(c *Case) error {
	g, s := c.Graph, c.Schedule

	compiled, err := tpdf.Compile(g)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	sinks := SinkNodes(g)
	refRec := newRecorder(sinks)
	want, err := tpdf.Stream(g, refRec.behaviors(),
		c.baseOpts(refRec, tpdf.WithIterations(s.Iterations))...)
	if err != nil {
		return fmt.Errorf("fresh-compile run: %w", err)
	}

	const sessions = 2
	recs := make([]*recorder, sessions)
	results := make([]*tpdf.ExecResult, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		i := i
		recs[i] = newRecorder(sinks)
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = tpdf.Stream(g, recs[i].behaviors(),
				c.baseOpts(recs[i],
					tpdf.WithIterations(s.Iterations),
					tpdf.WithCompiled(compiled))...)
		}()
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			return fmt.Errorf("stamped session %d: %w", i, errs[i])
		}
		if err := compareRuns(fmt.Sprintf("stamped session %d vs fresh compile", i),
			results[i], want, recs[i].seq, refRec.seq); err != nil {
			return err
		}
	}
	return nil
}
