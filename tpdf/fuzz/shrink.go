package fuzz

import (
	"strings"

	"repro/internal/gen"
)

// Invariant extracts the invariant name from a Check error ("tiers",
// "recovery", ...), or "" for nil / unrecognized errors. Shrinking uses
// it to accept only candidates that fail the same way.
func Invariant(err error) string {
	if err == nil {
		return ""
	}
	name, _, ok := strings.Cut(err.Error(), ":")
	if !ok {
		return ""
	}
	for _, ch := range invariants {
		if ch.name == name {
			return name
		}
	}
	return ""
}

// Shrink reduces a failing case while preserving its failure: candidates
// (halved horizon, dropped fault sites, dropped rebinds, a smaller graph
// regenerated from the same seed) are re-checked, and one is adopted only
// if Check still fails with the same invariant. maxSteps bounds the total
// number of adopted reductions; the greedy loop also stops as soon as no
// candidate reproduces. Returns the smallest still-failing case (possibly
// c itself).
func Shrink(c *Case, maxSteps int) *Case {
	wantInv := Invariant(Check(c))
	if wantInv == "" {
		return c
	}
	cur := c
	for step := 0; step < maxSteps; step++ {
		adopted := false
		for _, cand := range candidates(cur) {
			if Invariant(Check(cand)) == wantInv {
				cur = cand
				adopted = true
				break
			}
		}
		if !adopted {
			break
		}
	}
	return cur
}

// candidates proposes strictly smaller variants of a case, cheapest
// reductions first.
func candidates(c *Case) []*Case {
	var out []*Case
	s := c.Schedule

	if s.Iterations > 1 {
		out = append(out, &Case{Seed: c.Seed, Graph: c.Graph, Schedule: clipSchedule(s, s.Iterations/2), fromSeed: c.fromSeed})
	}
	if len(s.Panics) > 0 {
		ns := cloneSchedule(s)
		ns.Panics = ns.Panics[:len(ns.Panics)-1]
		out = append(out, &Case{Seed: c.Seed, Graph: c.Graph, Schedule: ns, fromSeed: c.fromSeed})
	}
	if len(s.RebindAborts) > 0 {
		ns := cloneSchedule(s)
		ns.RebindAborts = nil
		out = append(out, &Case{Seed: c.Seed, Graph: c.Graph, Schedule: ns, fromSeed: c.fromSeed})
	}
	if len(s.Rebinds) > 0 {
		ns := cloneSchedule(s)
		ns.Rebinds = ns.Rebinds[:len(ns.Rebinds)-1]
		if len(ns.Rebinds) == 0 {
			ns.RebindAborts = nil
		}
		out = append(out, &Case{Seed: c.Seed, Graph: c.Graph, Schedule: ns, fromSeed: c.fromSeed})
	}

	// Topology reduction: regenerate graph and schedule from the same
	// seed at a smaller node count. Only for seed-generated cases — a
	// corpus-loaded graph has no generator configuration to rerun.
	if c.fromSeed && len(c.Graph.Nodes) > 2 {
		g := gen.Graph(c.Seed, GraphConfig{Nodes: len(c.Graph.Nodes) - 1})
		out = append(out, &Case{
			Seed:     c.Seed,
			Graph:    g,
			Schedule: gen.NewSchedule(c.Seed, g, ScheduleConfig{}),
			fromSeed: true,
		})
	}
	return out
}

// clipSchedule shortens a schedule to iters iterations, dropping rebinds,
// aborts and crash points that fall beyond the new horizon and re-fitting
// the pump cadence.
func clipSchedule(s *Schedule, iters int64) *Schedule {
	ns := &Schedule{Seed: s.Seed, Iterations: iters, Base: copyParams(s.Base), CrashAfterPump: -1}
	kept := map[int64]bool{}
	for _, rb := range s.Rebinds {
		if rb.At < iters {
			ns.Rebinds = append(ns.Rebinds, Rebind{At: rb.At, Params: copyParams(rb.Params)})
			kept[rb.At] = true
		}
	}
	for _, at := range s.RebindAborts {
		if kept[at] {
			ns.RebindAborts = append(ns.RebindAborts, at)
		}
	}
	rem := iters
	for _, p := range s.Pumps {
		if rem <= 0 {
			break
		}
		if p > rem {
			p = rem
		}
		ns.Pumps = append(ns.Pumps, p)
		rem -= p
	}
	if rem > 0 {
		ns.Pumps = append(ns.Pumps, rem)
	}
	if s.CrashAfterPump >= 0 && s.CrashAfterPump < len(ns.Pumps)-1 {
		ns.CrashAfterPump = s.CrashAfterPump
	}
	ns.Panics = append(ns.Panics, s.Panics...)
	return ns
}

func cloneSchedule(s *Schedule) *Schedule {
	ns := &Schedule{
		Seed:           s.Seed,
		Iterations:     s.Iterations,
		Base:           copyParams(s.Base),
		Pumps:          append([]int64(nil), s.Pumps...),
		Panics:         append([]FaultSite(nil), s.Panics...),
		RebindAborts:   append([]int64(nil), s.RebindAborts...),
		CrashAfterPump: s.CrashAfterPump,
	}
	for _, rb := range s.Rebinds {
		ns.Rebinds = append(ns.Rebinds, Rebind{At: rb.At, Params: copyParams(rb.Params)})
	}
	return ns
}
