package fuzz

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/tpdf"
	"repro/tpdf/serve"
)

// serveClient is a minimal JSON client for the serve HTTP surface — the
// harness drives sessions through real HTTP requests, not the Manager
// API, so the admission, codec and handler layers are inside the
// differential.
type serveClient struct {
	t    *testing.T
	base string
}

func (c *serveClient) post(path string, req, resp any) error {
	c.t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		c.t.Fatalf("marshal %T: %v", req, err)
	}
	httpResp, err := http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode < 200 || httpResp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(httpResp.Body).Decode(&e)
		return fmt.Errorf("%s: HTTP %d: %s", path, httpResp.StatusCode, e.Error)
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

type openResp struct {
	ID string `json:"id"`
}

type pumpResp struct {
	Completed  int64            `json:"completed"`
	SinkTokens map[string]int64 `json:"sink_tokens"`
}

func (c *serveClient) open(graphSrc string, params map[string]int64) (string, error) {
	var resp openResp
	err := c.post("/v1/sessions", map[string]any{
		"tenant": "fuzz",
		"graph":  map[string]any{"source": graphSrc},
		"params": params,
	}, &resp)
	return resp.ID, err
}

func (c *serveClient) pump(id string, iters int64, params map[string]int64) (pumpResp, error) {
	var resp pumpResp
	err := c.post("/v1/sessions/"+id+"/pump", map[string]any{
		"iterations": iters,
		"params":     params,
	}, &resp)
	return resp, err
}

// pumpParams aligns the schedule's rebinds to its pump cadence: the
// parameter set attached to pump i is the rebind scheduled exactly at
// that pump's start boundary (the only boundary HTTP can hit). Both the
// reference and the crash-recovered run apply the same sets, so their
// trajectories match whatever the alignment drops.
func pumpParams(s *Schedule) []map[string]int64 {
	out := make([]map[string]int64, len(s.Pumps))
	cum := int64(0)
	for i := range s.Pumps {
		for _, rb := range s.Rebinds {
			if rb.At == cum {
				out[i] = rb.Params
			}
		}
		cum += s.Pumps[i]
	}
	return out
}

// TestServeDifferentialCrashRecovery pushes generated cases through the
// full service stack over real HTTP: admit the generated graph from its
// text, pump it on the schedule's cadence, kill the server at the
// schedule's crash point (no drain — exactly what SIGKILL leaves), boot
// a second server on the same data directory, recover, and finish the
// cadence. Completed count and sink tokens must match an uninterrupted
// reference session pumped through its own server.
func TestServeDifferentialCrashRecovery(t *testing.T) {
	seeds := []int64{1, 3, 7, 10, 11, 13, 15, 25, 28, 39}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			c := NewCase(seed)
			s := c.Schedule
			if s.CrashAfterPump < 0 {
				t.Skipf("seed %d schedules no crash point", seed)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			graphSrc := tpdf.Format(c.Graph)
			params := pumpParams(s)

			// Uninterrupted reference: its own server, full cadence.
			refSrv := serve.New(serve.Config{})
			refHTTP := httptest.NewServer(refSrv.Handler())
			defer refHTTP.Close()
			ref := &serveClient{t: t, base: refHTTP.URL}
			refID, err := ref.open(graphSrc, s.Base)
			if err != nil {
				t.Fatalf("reference open: %v", err)
			}
			var want pumpResp
			for i, n := range s.Pumps {
				if want, err = ref.pump(refID, n, params[i]); err != nil {
					t.Fatalf("reference pump %d: %v", i, err)
				}
			}
			if err := refSrv.Manager().Drain(ctx); err != nil {
				t.Fatalf("reference drain: %v", err)
			}

			// Run under test: durable server, crash after the scheduled
			// pump, recover on a second server over the same directory.
			dataDir := t.TempDir()
			cfg := serve.Config{DataDir: dataDir, PersistEvery: 1, DrainTimeout: 10 * time.Second}
			srv1 := serve.New(cfg)
			h1 := httptest.NewServer(srv1.Handler())
			cl := &serveClient{t: t, base: h1.URL}
			id, err := cl.open(graphSrc, s.Base)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			for i := 0; i <= s.CrashAfterPump; i++ {
				if _, err := cl.pump(id, s.Pumps[i], params[i]); err != nil {
					t.Fatalf("pump %d before crash: %v", i, err)
				}
			}
			// Crash: stop serving and walk away from the manager — no
			// drain, no flush beyond what each pump ack already forced.
			h1.Close()

			srv2 := serve.New(cfg)
			rec := srv2.Manager().Recover(ctx)
			if rec.Recovered != 1 || rec.Failed != 0 {
				t.Fatalf("recovery stats: %+v", rec)
			}
			h2 := httptest.NewServer(srv2.Handler())
			defer h2.Close()
			cl2 := &serveClient{t: t, base: h2.URL}

			var got pumpResp
			for i := s.CrashAfterPump + 1; i < len(s.Pumps); i++ {
				if got, err = cl2.pump(id, s.Pumps[i], params[i]); err != nil {
					t.Fatalf("pump %d after recovery: %v", i, err)
				}
			}
			if got.Completed != want.Completed {
				t.Errorf("completed: recovered %d, reference %d", got.Completed, want.Completed)
			}
			if !reflect.DeepEqual(got.SinkTokens, want.SinkTokens) {
				t.Errorf("sink tokens: recovered %v, reference %v", got.SinkTokens, want.SinkTokens)
			}
			if err := srv2.Manager().Drain(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
		})
	}
}

// TestServeAdmitsGeneratedGraphs sweeps generated graphs through HTTP
// admission alone: every valid-by-construction graph must be admitted
// (they are all Theorem 2-bounded) and pump one iteration.
func TestServeAdmitsGeneratedGraphs(t *testing.T) {
	srv := serve.New(serve.Config{})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()
	cl := &serveClient{t: t, base: h.URL}

	n := int64(40)
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= n; seed++ {
		c := NewCase(seed)
		id, err := cl.open(tpdf.Format(c.Graph), c.Schedule.Base)
		if err != nil {
			t.Fatalf("seed %d: admission refused a valid generated graph: %v", seed, err)
		}
		if resp, err := cl.pump(id, 1, nil); err != nil || resp.Completed != 1 {
			t.Fatalf("seed %d: pump: completed=%d err=%v", seed, resp.Completed, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Manager().Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
