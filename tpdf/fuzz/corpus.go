package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tpdf"
)

// A corpus entry is a pair of plain-text files sharing a stem:
// <name>.tpdf holds the graph (canonical Format text) and
// <name>.schedule the schedule (canonical String text). Plain text keeps
// counterexamples reviewable in diffs and editable by hand.

// CorpusEntry is one loaded corpus case.
type CorpusEntry struct {
	Name string
	Case *Case
}

// WriteCase writes the case into dir as a corpus entry named name,
// creating dir if needed.
func WriteCase(dir, name string, c *Case) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".tpdf"), []byte(tpdf.Format(c.Graph)), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".schedule"), []byte(c.Schedule.String()), 0o644)
}

// LoadCorpus reads every graph/schedule pair in dir, sorted by name. A
// missing directory is an empty corpus; a .tpdf file without its
// .schedule twin (or vice versa) is an error — half a counterexample
// silently replaying as nothing is how regressions sneak back in.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	graphs := map[string]bool{}
	schedules := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(e.Name(), ".tpdf"):
			graphs[strings.TrimSuffix(e.Name(), ".tpdf")] = true
		case strings.HasSuffix(e.Name(), ".schedule"):
			schedules[strings.TrimSuffix(e.Name(), ".schedule")] = true
		}
	}
	var names []string
	for name := range graphs {
		if !schedules[name] {
			return nil, fmt.Errorf("fuzz: corpus entry %s has a graph but no schedule", name)
		}
		names = append(names, name)
	}
	for name := range schedules {
		if !graphs[name] {
			return nil, fmt.Errorf("fuzz: corpus entry %s has a schedule but no graph", name)
		}
	}
	sort.Strings(names)

	out := make([]CorpusEntry, 0, len(names))
	for _, name := range names {
		gSrc, err := os.ReadFile(filepath.Join(dir, name+".tpdf"))
		if err != nil {
			return nil, err
		}
		g, err := tpdf.Parse(string(gSrc))
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus %s: %w", name+".tpdf", err)
		}
		sSrc, err := os.ReadFile(filepath.Join(dir, name+".schedule"))
		if err != nil {
			return nil, err
		}
		sched, err := ParseSchedule(string(sSrc))
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus %s: %w", name+".schedule", err)
		}
		out = append(out, CorpusEntry{Name: name, Case: &Case{Seed: sched.Seed, Graph: g, Schedule: sched}})
	}
	return out, nil
}
