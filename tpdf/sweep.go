package tpdf

import (
	"sort"

	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/symb"
)

// SweepPoint is the token-accurate simulation outcome at one parameter
// valuation of a Sweep.
type SweepPoint struct {
	// Params is the valuation this point was simulated at (the grid entry,
	// merged over any WithParams baseline).
	Params map[string]int64
	// Time is the virtual completion time.
	Time int64
	// TotalBuffer sums the per-edge high-water marks — the buffer metric
	// of the paper's Fig. 8.
	TotalBuffer int64
	// HighWater and Final are the per-edge buffer high-water marks and
	// end-of-run token counts; Firings the per-node firing counts.
	HighWater []int64
	Final     []int64
	Firings   []int64
}

// Grid builds the cartesian product of parameter axes as Sweep input.
// Axis names are iterated in sorted order with the last axis varying
// fastest, so the point order is deterministic.
func Grid(axes map[string][]int64) []map[string]int64 {
	names := make([]string, 0, len(axes))
	total := 1
	for n := range axes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		total *= len(axes[n])
	}
	if len(names) == 0 || total == 0 {
		return nil
	}
	grid := make([]map[string]int64, 0, total)
	idx := make([]int, len(names))
	for {
		point := make(map[string]int64, len(names))
		for k, n := range names {
			point[n] = axes[n][idx[k]]
		}
		grid = append(grid, point)
		k := len(names) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(axes[names[k]]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return grid
		}
	}
}

// Sweep simulates the graph at every parameter valuation of the grid and
// returns one point per valuation, in grid order. WithParallelism shards
// the grid across a bounded worker pool; results are written by grid
// index, so the output is identical whatever the worker count. Each
// valuation is merged over the WithParams baseline (grid entries win).
// Other options as for Simulate.
//
// This is the programmatic face of the paper's evaluation loops: the
// Fig. 8 buffer sweep is Sweep over a β×N grid of the OFDM graph, reading
// TotalBuffer off each point.
func Sweep(g *Graph, grid []map[string]int64, opts ...Option) ([]SweepPoint, error) {
	cfg := buildConfig(opts)
	out := make([]SweepPoint, len(grid))
	err := pool.Run(len(grid), cfg.parallel, func(i int) error {
		env := symb.Env{}
		params := make(map[string]int64, len(cfg.params)+len(grid[i]))
		for k, v := range cfg.params {
			env[k] = v
			params[k] = v
		}
		for k, v := range grid[i] {
			env[k] = v
			params[k] = v
		}
		res, err := sim.Run(sim.Config{
			Graph:       g,
			Context:     cfg.ctx,
			Env:         env,
			Iterations:  cfg.iterations,
			Processors:  cfg.processors,
			Decide:      cfg.decide,
			MaxEvents:   cfg.maxEvents,
			BuffersOnly: true,
		})
		if err != nil {
			return err
		}
		out[i] = SweepPoint{
			Params:      params,
			Time:        res.Time,
			TotalBuffer: res.TotalBuffer(),
			HighWater:   res.HighWater,
			Final:       res.Final,
			Firings:     res.Firings,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
