package tpdf

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/symb"
)

// SweepPoint is the token-accurate simulation outcome at one parameter
// valuation of a Sweep.
type SweepPoint struct {
	// Params is the valuation this point was simulated at (the grid entry,
	// merged over any WithParams baseline).
	Params map[string]int64
	// Time is the virtual completion time.
	Time int64
	// TotalBuffer sums the per-edge high-water marks — the buffer metric
	// of the paper's Fig. 8.
	TotalBuffer int64
	// HighWater and Final are the per-edge buffer high-water marks and
	// end-of-run token counts; Firings the per-node firing counts.
	HighWater []int64
	Final     []int64
	Firings   []int64
}

// MaxGridPoints caps the cartesian product Grid will materialize. Each
// point costs a map allocation before any simulation starts, so a product
// beyond this is an input error, not a sweep — Grid reports it instead of
// letting the runtime die on a multi-terabyte allocation.
const MaxGridPoints = 1 << 24

// Grid builds the cartesian product of parameter axes as Sweep input.
// Axis names are iterated in sorted order with the last axis varying
// fastest, so the point order is deterministic. An empty axis yields a nil
// grid; a product exceeding MaxGridPoints (or overflowing int outright)
// is reported as an error instead of silently mis-sizing the result.
func Grid(axes map[string][]int64) ([]map[string]int64, error) {
	names := make([]string, 0, len(axes))
	for n := range axes {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 1
	for _, n := range names {
		l := len(axes[n])
		if l == 0 {
			return nil, nil
		}
		if total > MaxGridPoints/l {
			return nil, fmt.Errorf("tpdf: grid size exceeds %d points (axis %q of %d entries on top of %d points)", MaxGridPoints, n, l, total)
		}
		total *= l
	}
	if len(names) == 0 {
		return nil, nil
	}
	grid := make([]map[string]int64, 0, total)
	idx := make([]int, len(names))
	for {
		point := make(map[string]int64, len(names))
		for k, n := range names {
			point[n] = axes[n][idx[k]]
		}
		grid = append(grid, point)
		k := len(names) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(axes[names[k]]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return grid, nil
		}
	}
}

// Sweep simulates the graph at every parameter valuation of the grid and
// returns one point per valuation, in grid order. WithParallelism shards
// the grid across a bounded worker pool; results are written by grid
// index, so the output is identical whatever the worker count. Each
// valuation is merged over the WithParams baseline (grid entries win).
// WithContext cancels a running sweep: remaining grid points are abandoned
// and the context's error is returned. Other options as for Simulate.
//
// The graph is compiled once per worker (core compile-once form): every
// point the worker shards rebinds the compiled program in place and
// re-runs a pooled simulator, so a warm sweep point costs no graph
// construction, no symbolic evaluation through maps and no simulator
// allocation.
//
// This is the programmatic face of the paper's evaluation loops: the
// Fig. 8 buffer sweep is Sweep over a β×N grid of the OFDM graph, reading
// TotalBuffer off each point.
func Sweep(g *Graph, grid []map[string]int64, opts ...Option) ([]SweepPoint, error) {
	cfg := buildConfig(opts)
	out := make([]SweepPoint, len(grid))
	if len(grid) == 0 {
		return out, nil
	}
	// A worker's setup compiles the graph once; insist on ≥2 points per
	// worker so the compile-once cost amortizes even on small grids.
	nw := pool.WorkersAmortized(len(grid), cfg.parallel, 2)
	progs := make([]*core.Program, nw)
	sims := make([]*sim.Simulator, nw)
	env := make([]symb.Env, nw)
	err := pool.RunWorkers(len(grid), nw, func(w, i int) error {
		if cfg.ctx != nil {
			// Abort mid-grid: remaining points fail fast on a cancelled
			// context instead of simulating to completion.
			if err := cfg.ctx.Err(); err != nil {
				return err
			}
		}
		if progs[w] == nil {
			p, err := core.Compile(g)
			if err != nil {
				return err
			}
			progs[w] = p
			env[w] = make(symb.Env, len(cfg.params)+len(grid[i]))
		}
		params := make(map[string]int64, len(cfg.params)+len(grid[i]))
		clear(env[w])
		for k, v := range cfg.params {
			env[w][k] = v
			params[k] = v
		}
		for k, v := range grid[i] {
			env[w][k] = v
			params[k] = v
		}
		if err := progs[w].Rebind(env[w]); err != nil {
			return err
		}
		if sims[w] == nil {
			s, err := sim.NewSimulatorFromProgram(progs[w], sim.Config{
				Context:     cfg.ctx,
				Iterations:  cfg.iterations,
				Processors:  cfg.processors,
				Decide:      cfg.decide,
				MaxEvents:   cfg.maxEvents,
				BuffersOnly: true,
			})
			if err != nil {
				return err
			}
			sims[w] = s
		} else if err := sims[w].BindProgram(progs[w]); err != nil {
			return err
		}
		res, err := sims[w].Run()
		if err != nil {
			return err
		}
		// The result aliases the pooled simulator's state; copy it out in
		// one slab per point.
		ne, nn := len(res.HighWater), len(res.Firings)
		buf := make([]int64, 2*ne+nn)
		hw, fin, fir := buf[:ne:ne], buf[ne:2*ne:2*ne], buf[2*ne:]
		copy(hw, res.HighWater)
		copy(fin, res.Final)
		copy(fir, res.Firings)
		out[i] = SweepPoint{
			Params:      params,
			Time:        res.Time,
			TotalBuffer: res.TotalBuffer(),
			HighWater:   hw,
			Final:       fin,
			Firings:     fir,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
