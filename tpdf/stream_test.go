package tpdf_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/tpdf"
)

// TestStreamMatchesExecuteOnBuiltins is the engine's determinism contract:
// for every built-in application graph, the concurrent Stream must produce
// exactly the firing counts and leftover channel contents of the
// sequential Execute.
func TestStreamMatchesExecuteOnBuiltins(t *testing.T) {
	for _, name := range tpdf.BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			s, err := tpdf.BuiltinScenario(name, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := tpdf.Execute(s.Graph, nil, tpdf.WithIterations(3))
			if err != nil {
				t.Fatal(err)
			}
			got, err := tpdf.Stream(s.Graph, nil, tpdf.WithIterations(3))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Firings, got.Firings) {
				t.Errorf("firings: Execute %v, Stream %v", want.Firings, got.Firings)
			}
			if !reflect.DeepEqual(want.Remaining, got.Remaining) {
				t.Errorf("remaining: Execute %v, Stream %v", want.Remaining, got.Remaining)
			}
		})
	}
}

// payloadPipeline builds the 5-stage payload pipeline and behaviors that
// push real integers through it, capturing what the sink sees.
func payloadPipeline(captured *[]int) (*tpdf.Graph, map[string]tpdf.Behavior) {
	g := tpdf.OFDMPayloadGraph()
	passthrough := func(f *tpdf.Firing) error {
		f.Produce("o0", f.In["i0"][0])
		return nil
	}
	behaviors := map[string]tpdf.Behavior{
		"SRC": func(f *tpdf.Firing) error {
			f.Produce("o0", int(f.K)*3)
			return nil
		},
		"RCP": passthrough,
		"FFT": func(f *tpdf.Firing) error {
			f.Produce("o0", f.In["i0"][0].(int)+1)
			return nil
		},
		"QAM": passthrough,
		"SNK": func(f *tpdf.Firing) error {
			*captured = append(*captured, f.In["i0"][0].(int))
			return nil
		},
	}
	return g, behaviors
}

// TestStreamMatchesExecutePayloads compares the value streams themselves,
// not just the token accounting.
func TestStreamMatchesExecutePayloads(t *testing.T) {
	var seq, conc []int
	g, behaviors := payloadPipeline(&seq)
	if _, err := tpdf.Execute(g, behaviors, tpdf.WithIterations(64)); err != nil {
		t.Fatal(err)
	}
	g2, behaviors2 := payloadPipeline(&conc)
	if _, err := tpdf.Stream(g2, behaviors2, tpdf.WithIterations(64)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, conc) {
		t.Errorf("payload streams differ:\nExecute %v\nStream  %v", seq, conc)
	}
}

// TestStreamReconfigure exercises the transaction semantics through the
// facade: a parametric two-port join must observe consistent rates on both
// ports in every firing, following the reconfiguration plan exactly.
func TestStreamReconfigure(t *testing.T) {
	g, err := tpdf.NewGraph("reconf").
		Param("p", 2, 1, 8).
		Kernel("A", 1).
		Kernel("B", 1).
		Connect("A[p] -> B[p]").
		Connect("A[p] -> B[p]").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	plan := []int64{2, 7, 3}
	var observed [][2]int
	behaviors := map[string]tpdf.Behavior{
		"B": func(f *tpdf.Firing) error {
			observed = append(observed, [2]int{len(f.In["i0"]), len(f.In["i1"])})
			return nil
		},
	}
	_, err = tpdf.Stream(g, behaviors,
		tpdf.WithParam("p", plan[0]),
		tpdf.WithIterations(int64(len(plan))),
		tpdf.WithReconfigure(func(completed int64) map[string]int64 {
			return map[string]int64{"p": plan[completed]}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(observed) != len(plan) {
		t.Fatalf("observed %d firings, want %d", len(observed), len(plan))
	}
	for i, ob := range observed {
		if ob[0] != ob[1] || int64(ob[0]) != plan[i] {
			t.Errorf("firing %d observed rates %v, want [%d %d]", i, ob, plan[i], plan[i])
		}
	}
}

func TestStreamContextCancellation(t *testing.T) {
	g, behaviors := payloadPipeline(new([]int))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	behaviors["FFT"] = func(f *tpdf.Firing) error {
		if f.K == 0 {
			cancel()
		}
		f.Produce("o0", 0)
		return nil
	}
	_, err := tpdf.Stream(g, behaviors, tpdf.WithIterations(100000), tpdf.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream returned %v, want context.Canceled", err)
	}
}

// TestExecuteContextCancellation covers the satellite fix: Execute now
// honors WithContext like Simulate does.
func TestExecuteContextCancellation(t *testing.T) {
	g, behaviors := payloadPipeline(new([]int))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	behaviors["FFT"] = func(f *tpdf.Firing) error {
		if f.K == 0 {
			cancel()
		}
		f.Produce("o0", 0)
		return nil
	}
	_, err := tpdf.Execute(g, behaviors, tpdf.WithIterations(100000), tpdf.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute returned %v, want context.Canceled", err)
	}
}

func TestStreamWorkersOption(t *testing.T) {
	var seq, conc []int
	g, behaviors := payloadPipeline(&seq)
	if _, err := tpdf.Execute(g, behaviors, tpdf.WithIterations(32)); err != nil {
		t.Fatal(err)
	}
	g2, behaviors2 := payloadPipeline(&conc)
	if _, err := tpdf.Stream(g2, behaviors2, tpdf.WithIterations(32), tpdf.WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, conc) {
		t.Errorf("WithWorkers(1) changed the payload stream")
	}
}

func TestStreamChannelCapacityOverride(t *testing.T) {
	var conc []int
	g, behaviors := payloadPipeline(&conc)
	res, err := tpdf.Stream(g, behaviors, tpdf.WithIterations(16), tpdf.WithChannelCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings["SNK"] != 16 || len(conc) != 16 {
		t.Fatalf("capacity-1 run incomplete: firings %v, captured %d", res.Firings, len(conc))
	}
}

// TestStreamStallTimeout covers the WithStallTimeout option: an undersized
// channel capacity deadlocks this diamond (B waits for M's token before
// draining the direct edge, but A only feeds M on its second phase, after
// a second direct-edge write the full capacity-1 ring refuses), and the
// watchdog must surface the deadlock diagnostic within the configured
// window instead of the 1s default.
func TestStreamStallTimeout(t *testing.T) {
	g, err := tpdf.NewGraph("stall").
		Kernel("A", 1).Kernel("M", 1).Kernel("B", 1).
		Connect("M[1] -> B[1,0]").
		Connect("A[1] -> B[1]").
		Connect("A[0,1] -> M[1]").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	const window = 25 * time.Millisecond
	start := time.Now()
	_, err = tpdf.Stream(g, nil,
		tpdf.WithChannelCapacity(1),
		tpdf.WithStallTimeout(window))
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("got %v, want a deadlock diagnostic", err)
	}
	// Two idle windows trip the watchdog; anything near the 1s default
	// means the option was not plumbed through.
	if elapsed > 20*window {
		t.Errorf("watchdog took %v with a %v window", elapsed, window)
	}
}

// TestStreamUnchangedReconfigureMatchesPlain is the facade half of the
// reconfigure-churn fix: a hook that never changes anything must yield
// exactly the plain Stream payload sequence and accounting.
func TestStreamUnchangedReconfigureMatchesPlain(t *testing.T) {
	var plain, hooked []int
	g, behaviors := payloadPipeline(&plain)
	want, err := tpdf.Stream(g, behaviors, tpdf.WithIterations(64))
	if err != nil {
		t.Fatal(err)
	}
	g2, behaviors2 := payloadPipeline(&hooked)
	got, err := tpdf.Stream(g2, behaviors2, tpdf.WithIterations(64),
		tpdf.WithReconfigure(func(completed int64) map[string]int64 { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Firings, got.Firings) || !reflect.DeepEqual(want.Remaining, got.Remaining) {
		t.Errorf("unchanged-reconfigure accounting diverged: %v/%v vs %v/%v",
			want.Firings, want.Remaining, got.Firings, got.Remaining)
	}
	if !reflect.DeepEqual(plain, hooked) {
		t.Errorf("unchanged-reconfigure payload stream diverged:\nplain  %v\nhooked %v", plain, hooked)
	}
}

// latencyStage simulates an I/O-bound stage (a sensor read, a network hop):
// the dominant cost is waiting, which is what a concurrent pipeline
// overlaps and a sequential schedule serializes.
func latencyStage(d time.Duration) tpdf.Behavior {
	return func(f *tpdf.Firing) error {
		time.Sleep(d)
		if in := f.In["i0"]; len(in) > 0 {
			f.Produce("o0", in[0])
		} else {
			f.Produce("o0", int(f.K))
		}
		return nil
	}
}

func latencyBehaviors(g *tpdf.Graph, d time.Duration) map[string]tpdf.Behavior {
	b := map[string]tpdf.Behavior{}
	for _, n := range g.Nodes {
		b[n.Name] = latencyStage(d)
	}
	return b
}

// TestStreamFasterThanExecute asserts the acceptance criterion directly:
// on a multi-actor graph with non-trivial (latency-bound) behaviors the
// concurrent engine beats the sequential runner.
func TestStreamFasterThanExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short")
	}
	g := tpdf.OFDMPayloadGraph()
	const delay = 2 * time.Millisecond
	const iters = 32

	start := time.Now()
	if _, err := tpdf.Execute(g, latencyBehaviors(g, delay), tpdf.WithIterations(iters)); err != nil {
		t.Fatal(err)
	}
	sequential := time.Since(start)

	start = time.Now()
	if _, err := tpdf.Stream(g, latencyBehaviors(g, delay), tpdf.WithIterations(iters)); err != nil {
		t.Fatal(err)
	}
	concurrent := time.Since(start)

	if concurrent >= sequential {
		t.Errorf("Stream (%v) not faster than Execute (%v)", concurrent, sequential)
	}
	t.Logf("sequential %v, concurrent %v, speedup %.2fx", sequential, concurrent,
		float64(sequential)/float64(concurrent))
}

// BenchmarkStream compares the two payload executors on the same
// latency-bound 5-stage pipeline; the ns/op ratio is the pipeline speedup
// (`go test -bench=Stream`).
func BenchmarkStream(b *testing.B) {
	g := tpdf.OFDMPayloadGraph()
	const delay = 500 * time.Microsecond
	const iters = 16
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tpdf.Execute(g, latencyBehaviors(g, delay), tpdf.WithIterations(iters)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tpdf.Stream(g, latencyBehaviors(g, delay), tpdf.WithIterations(iters)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
