// Package dsp is the public face of the signal-processing substrate backing
// the OFDM and FM-radio case studies: FFT/IFFT, cyclic prefixes, QPSK and
// 16-QAM mapping, FIR filters, FM modulation and a deterministic PRNG.
package dsp

import "repro/internal/dsp"

// Modulation schemes and the OFDM modulator/demodulator pair.
type (
	// Scheme is a constellation (QPSK or QAM16); its value is the bits per
	// subcarrier symbol.
	Scheme = dsp.Scheme
	// Modulator assembles OFDM frames: N subcarriers, cyclic prefix L,
	// scheme S.
	Modulator = dsp.Modulator
	// Demodulator inverts Modulator.
	Demodulator = dsp.Demodulator
	// FIR is a streaming finite-impulse-response filter.
	FIR = dsp.FIR
	// PRNG is the deterministic xorshift generator used by the examples.
	PRNG = dsp.PRNG
)

// Constellations.
const (
	QPSK  = dsp.QPSK
	QAM16 = dsp.QAM16
)

// FFT transforms x in place (length must be a power of two).
func FFT(x []complex128) error { return dsp.FFT(x) }

// IFFT inverse-transforms x in place.
func IFFT(x []complex128) error { return dsp.IFFT(x) }

// AddCyclicPrefix prepends the last l samples of the symbol.
func AddCyclicPrefix(sym []complex128, l int) ([]complex128, error) {
	return dsp.AddCyclicPrefix(sym, l)
}

// RemoveCyclicPrefix drops the l-sample prefix of a frame.
func RemoveCyclicPrefix(frame []complex128, l int) ([]complex128, error) {
	return dsp.RemoveCyclicPrefix(frame, l)
}

// QPSKMap and QPSKDemap convert between bits and QPSK symbols.
func QPSKMap(bits []byte) ([]complex128, error) { return dsp.QPSKMap(bits) }

// QPSKDemap recovers bits from QPSK symbols.
func QPSKDemap(syms []complex128) []byte { return dsp.QPSKDemap(syms) }

// QAM16Map and QAM16Demap convert between bits and Gray-coded 16-QAM.
func QAM16Map(bits []byte) ([]complex128, error) { return dsp.QAM16Map(bits) }

// QAM16Demap recovers bits from 16-QAM symbols.
func QAM16Demap(syms []complex128) []byte { return dsp.QAM16Demap(syms) }

// BitErrors counts differing bits between two equal-length bit slices.
func BitErrors(a, b []byte) int { return dsp.BitErrors(a, b) }

// NewPRNG seeds a deterministic generator.
func NewPRNG(seed uint64) *PRNG { return dsp.NewPRNG(seed) }

// NewFIR builds a filter with the given taps.
func NewFIR(taps []float64) *FIR { return dsp.NewFIR(taps) }

// LowPassTaps designs a windowed-sinc low-pass filter.
func LowPassTaps(cutoff float64, ntaps int) ([]float64, error) {
	return dsp.LowPassTaps(cutoff, ntaps)
}

// BandPassTaps designs a windowed-sinc band-pass filter.
func BandPassTaps(low, high float64, ntaps int) ([]float64, error) {
	return dsp.BandPassTaps(low, high, ntaps)
}

// FMModulate frequency-modulates a message onto a complex baseband carrier.
func FMModulate(msg []float64, deviation float64) []complex128 {
	return dsp.FMModulate(msg, deviation)
}

// FMDemod recovers the message from an FM baseband signal.
func FMDemod(x []complex128) []float64 { return dsp.FMDemod(x) }
