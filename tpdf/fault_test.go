package tpdf_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/tpdf"
)

// sinkRecorder is the differential tests' observable output: every sink
// node appends its per-firing consumed-token count to its own sequence.
// Each sink actor is a single goroutine, so per-sink appends need no
// locking; the combined map is only read at barriers (snapshot) and after
// the run.
type sinkRecorder struct {
	seq map[string][]int64
}

func newSinkRecorder(sinks []string) *sinkRecorder {
	r := &sinkRecorder{seq: make(map[string][]int64, len(sinks))}
	for _, s := range sinks {
		r.seq[s] = nil
	}
	return r
}

func (r *sinkRecorder) behaviors(sinks []string) map[string]tpdf.Behavior {
	b := make(map[string]tpdf.Behavior, len(sinks))
	for _, name := range sinks {
		name := name
		b[name] = func(f *tpdf.Firing) error {
			n := int64(0)
			for _, vals := range f.In {
				n += int64(len(vals))
			}
			r.seq[name] = append(r.seq[name], n)
			return nil
		}
	}
	return b
}

// snapshot returns a self-contained copy for Checkpoint.User.
func (r *sinkRecorder) snapshot() any {
	cp := make(map[string][]int64, len(r.seq))
	for k, v := range r.seq {
		cp[k] = append([]int64(nil), v...)
	}
	return cp
}

// restore rewinds the recorder to a snapshot — the rollback discarding
// whatever the aborted transaction appended.
func (r *sinkRecorder) restore(u any) {
	cp := u.(map[string][]int64)
	for k := range r.seq {
		r.seq[k] = append(r.seq[k][:0:0], cp[k]...)
	}
}

// sinkNodes lists the nodes the differential tests attach behaviors (and
// inject panics) to: the graph's sinks (no outgoing edges), or every node
// when the graph is a cycle with no sinks — a recording behavior that
// produces nothing is legal anywhere, the engine nil-pads its outputs at
// the declared rates.
func sinkNodes(g *tpdf.Graph) []string {
	out := make([]bool, len(g.Nodes))
	for _, e := range g.Edges {
		out[e.Src] = true
	}
	var sinks []string
	for ni, n := range g.Nodes {
		if !out[ni] {
			sinks = append(sinks, n.Name)
		}
	}
	if len(sinks) == 0 {
		for _, n := range g.Nodes {
			sinks = append(sinks, n.Name)
		}
	}
	return sinks
}

// cycleParams builds a deterministic reconfigure plan over the graph's
// bounded parameters: at every even boundary it proposes the next value in
// a short cycle through each parameter's declared range. Returns nil when
// the graph has no bounded parameters (the hook then never proposes a
// change and rebind faults have no site to fire at).
func cycleParams(g *tpdf.Graph) func(completed int64) map[string]int64 {
	type pRange struct {
		name     string
		min, max int64
	}
	var params []pRange
	for _, p := range g.Params {
		if p.Min > 0 && p.Max > p.Min {
			max := p.Max
			if max > p.Min+2 {
				max = p.Min + 2
			}
			params = append(params, pRange{p.Name, p.Min, max})
		}
	}
	if len(params) == 0 {
		return nil
	}
	return func(completed int64) map[string]int64 {
		if completed == 0 || completed%2 != 0 {
			return nil
		}
		out := make(map[string]int64, len(params))
		for _, p := range params {
			out[p.name] = p.min + (completed/2)%(p.max-p.min+1)
		}
		return out
	}
}

// faultSchedule builds the per-builtin seeded schedule: nPanics behavior
// panics at distinct sink firing sites, plus — when the builtin can rebind
// at all — one injected rebind abort. The rebind-abort half is returned
// separately so the reference run can share it: an aborted rebind changes
// the parameter trajectory, so it must abort in both runs for the outputs
// to be comparable; the panics are the recovered difference under test.
func faultSchedule(seed int64, sinks []string, canRebind bool, iters int64) (panics, rebinds []faultinject.Fault) {
	rng := rand.New(rand.NewSource(seed))
	used := map[string]bool{}
	for len(panics) < 2 {
		node := sinks[rng.Intn(len(sinks))]
		k := rng.Int63n(iters) // every sink fires >= once per iteration
		site := fmt.Sprintf("%s/%d", node, k)
		if used[site] {
			continue
		}
		used[site] = true
		panics = append(panics, faultinject.Fault{Kind: faultinject.KindPanic, Node: node, K: k})
	}
	if canRebind {
		rebinds = append(rebinds, faultinject.Fault{Kind: faultinject.KindRebindAbort, K: 2 + rng.Int63n(iters/2)})
	}
	return panics, rebinds
}

// TestBuiltinDifferentialRecovery runs every builtin twice under the same
// deterministic reconfigure plan and rebind-abort schedule: once fault-free
// (the reference) and once with seeded behavior panics recovered by
// checkpoint rollback. The recovered run must be byte-identical to the
// reference — same Firings, same Remaining payloads, same per-sink
// observation sequences — proving aborted transactions leave no trace.
func TestBuiltinDifferentialRecovery(t *testing.T) {
	const iters = 12
	for _, name := range tpdf.BuiltinNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g, err := tpdf.Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			sinks := sinkNodes(g)
			if len(sinks) == 0 {
				t.Fatalf("builtin %s has no sink nodes", name)
			}
			reconf := cycleParams(g)
			panics, rebinds := faultSchedule(int64(0x5EED)+int64(len(name)), sinks, reconf != nil, iters)

			run := func(withPanics bool) (*tpdf.ExecResult, map[string][]int64, error) {
				rec := newSinkRecorder(sinks)
				faults := rebinds
				if withPanics {
					faults = append(append([]faultinject.Fault(nil), panics...), rebinds...)
				}
				opts := []tpdf.Option{
					tpdf.WithIterations(iters),
					tpdf.WithUserState(rec.snapshot, rec.restore),
					tpdf.WithFaultPlan(faultinject.New(faults...)),
					tpdf.WithRebindAbortHandler(func(error) {}),
				}
				if reconf != nil {
					opts = append(opts, tpdf.WithReconfigure(reconf))
				}
				if withPanics {
					opts = append(opts, tpdf.WithPanicRecovery(len(panics)+1))
				} else {
					opts = append(opts, tpdf.WithCheckpoints(nil))
				}
				res, err := tpdf.Stream(g, rec.behaviors(sinks), opts...)
				return res, rec.seq, err
			}

			wantRes, wantSeq, err := run(false)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			gotRes, gotSeq, err := run(true)
			if err != nil {
				t.Fatalf("recovered run: %v", err)
			}
			if !reflect.DeepEqual(gotRes.Firings, wantRes.Firings) {
				t.Errorf("firings diverged:\n got %v\nwant %v", gotRes.Firings, wantRes.Firings)
			}
			if !reflect.DeepEqual(gotRes.Remaining, wantRes.Remaining) {
				t.Errorf("remaining tokens diverged:\n got %v\nwant %v", gotRes.Remaining, wantRes.Remaining)
			}
			if !reflect.DeepEqual(gotSeq, wantSeq) {
				t.Errorf("sink sequences diverged:\n got %v\nwant %v", gotSeq, wantSeq)
			}
		})
	}
}

// TestBuiltinCrashRestartResume exercises the external recovery path on
// every builtin: a first run is stopped at a mid-point checkpoint (as a
// crashed process's supervisor would hold one), a second run resumes from
// it, and the stitched execution must be byte-identical to one
// uninterrupted run — including across rebind boundaries, since the
// reconfigure plan is a pure function of the completed count.
func TestBuiltinCrashRestartResume(t *testing.T) {
	const iters, stopAt = 12, 5
	for _, name := range tpdf.BuiltinNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g, err := tpdf.Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			sinks := sinkNodes(g)
			reconf := cycleParams(g)
			opts := func(rec *sinkRecorder, extra ...tpdf.Option) []tpdf.Option {
				o := []tpdf.Option{tpdf.WithUserState(rec.snapshot, rec.restore)}
				if reconf != nil {
					o = append(o, tpdf.WithReconfigure(reconf))
				}
				return append(o, extra...)
			}

			refRec := newSinkRecorder(sinks)
			wantRes, err := tpdf.Stream(g, refRec.behaviors(sinks),
				opts(refRec, tpdf.WithIterations(iters))...)
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}

			// First leg: keep the checkpoint captured at stopAt.
			var saved *tpdf.Checkpoint
			legRec := newSinkRecorder(sinks)
			if _, err := tpdf.Stream(g, legRec.behaviors(sinks),
				opts(legRec,
					tpdf.WithIterations(stopAt),
					tpdf.WithCheckpoints(func(ck *tpdf.Checkpoint) {
						if ck.Completed == stopAt {
							saved = ck.Clone()
						}
					}))...); err != nil {
				t.Fatalf("first leg: %v", err)
			}
			if saved == nil {
				t.Fatalf("no checkpoint captured at %d", stopAt)
			}

			// Second leg: a fresh recorder (a restarted process's empty
			// state); WithResume rehydrates it from the checkpoint's User.
			resRec := newSinkRecorder(sinks)
			gotRes, err := tpdf.Stream(g, resRec.behaviors(sinks),
				opts(resRec, tpdf.WithIterations(iters), tpdf.WithResume(saved))...)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !reflect.DeepEqual(gotRes.Firings, wantRes.Firings) {
				t.Errorf("firings diverged:\n got %v\nwant %v", gotRes.Firings, wantRes.Firings)
			}
			if !reflect.DeepEqual(gotRes.Remaining, wantRes.Remaining) {
				t.Errorf("remaining tokens diverged:\n got %v\nwant %v", gotRes.Remaining, wantRes.Remaining)
			}
			if !reflect.DeepEqual(resRec.seq, refRec.seq) {
				t.Errorf("sink sequences diverged:\n got %v\nwant %v", resRec.seq, refRec.seq)
			}
		})
	}
}

// TestRebindValidationFacade checks the tpdf-level speculative-rebind
// surface: a validation predicate rejecting a valuation aborts the rebind
// with ErrRebindAborted (fatal without a handler, absorbed with one).
func TestRebindValidationFacade(t *testing.T) {
	g, err := tpdf.Builtin("ofdm")
	if err != nil {
		t.Fatal(err)
	}
	sinks := sinkNodes(g)
	reconf := cycleParams(g)
	if reconf == nil {
		t.Fatal("ofdm should have bounded params")
	}
	reject := func(params map[string]int64) error {
		return errors.New("rejected by policy")
	}

	rec := newSinkRecorder(sinks)
	_, err = tpdf.Stream(g, rec.behaviors(sinks),
		tpdf.WithIterations(8),
		tpdf.WithReconfigure(reconf),
		tpdf.WithRebindValidation(reject))
	if !errors.Is(err, tpdf.ErrRebindAborted) {
		t.Fatalf("want ErrRebindAborted, got %v", err)
	}

	var aborts int
	rec = newSinkRecorder(sinks)
	if _, err := tpdf.Stream(g, rec.behaviors(sinks),
		tpdf.WithIterations(8),
		tpdf.WithReconfigure(reconf),
		tpdf.WithRebindValidation(reject),
		tpdf.WithRebindAbortHandler(func(err error) {
			if !errors.Is(err, tpdf.ErrRebindAborted) {
				t.Errorf("handler got %v", err)
			}
			aborts++
		})); err != nil {
		t.Fatalf("run with abort handler: %v", err)
	}
	if aborts == 0 {
		t.Fatal("validation never fired")
	}
}
