package tpdf

import (
	"strings"
	"testing"
)

func TestBuilderBuildsValidGraph(t *testing.T) {
	g, err := NewGraph("pipe").
		Param("p", 2, 1, 8).
		Kernel("A", 1).
		Kernel("B", 2).
		Kernel("C", 1).
		Connect("A[p] -> B[1]").
		Connect("B[1] -> C[2] init=2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 || len(g.Edges) != 2 {
		t.Fatalf("got %d nodes, %d edges", len(g.Nodes), len(g.Edges))
	}
	if g.Edges[1].Initial != 2 {
		t.Errorf("init option lost: %d", g.Edges[1].Initial)
	}
	if rep := Analyze(g); !rep.Bounded {
		t.Errorf("pipeline should be bounded:\n%s", rep)
	}
}

func TestBuilderAccumulatesAllErrors(t *testing.T) {
	_, err := NewGraph("bad").
		Kernel("A", 1).
		Kernel("A", 1).              // duplicate node
		Connect("A[1] -> NOPE[1]").  // unknown destination
		Connect("A[1] B[1]").        // missing arrow
		Connect("GHOST[1] -> A[1]"). // unknown source
		Build()
	if err == nil {
		t.Fatal("Build should fail")
	}
	for _, frag := range []string{"duplicate node", "NOPE", "missing", "GHOST"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("joined error missing %q:\n%v", frag, err)
		}
	}
}

func TestBuilderControlEdges(t *testing.T) {
	g, err := NewGraph("ctl").
		Kernel("SRC", 1).
		ControlActor("CTL", 0).
		Transaction("TR", 1).
		Kernel("A", 3).
		Kernel("B", 5).
		Kernel("SNK", 0).
		Connect("SRC[1] -> CTL[1]").
		Connect("SRC[1] -> A[1]").
		Connect("SRC[1] -> B[1]").
		Connect("A[1] -> TR[1] prio=2").
		Connect("B[1] -> TR[1] prio=1").
		Connect("TR[1] -> SNK[1]").
		Connect("CTL[1] => TR").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ctlEdges := 0
	for _, e := range g.Edges {
		if g.IsControlEdge(e) {
			ctlEdges++
		}
	}
	if ctlEdges != 1 {
		t.Errorf("want 1 control edge, got %d", ctlEdges)
	}
	tr, _ := g.NodeByName("TR")
	prios := map[int]bool{}
	for _, pi := range g.Nodes[tr].DataIns() {
		prios[g.Nodes[tr].Ports[pi].Priority] = true
	}
	if !prios[1] || !prios[2] {
		t.Errorf("prio options lost: %v", prios)
	}
}

func TestBuilderSpecSyntaxErrors(t *testing.T) {
	cases := []string{
		"A[1] -> B",           // data destination without rates
		"A -> B[1]",           // data source without rates
		"A[1] => B[1]",        // control destination with rates
		"A[1] -> B[1] init",   // malformed option
		"A[1] -> B[1] x=1",    // unknown option
		"A[1] => B prio=1",    // prio on a control edge
		"A[] -> B[1]",         // empty rate list
		"A[1] -> B[1] init=x", // non-numeric option
	}
	for _, spec := range cases {
		_, err := NewGraph("t").Kernel("A", 1).Kernel("B", 1).Connect(spec).Build()
		if err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
}

func TestBuilderValidatesStructure(t *testing.T) {
	// An unconnected port set that declares an undeclared parameter is a
	// structural error surfaced by Build even when every chain call
	// succeeded.
	_, err := NewGraph("undeclared").
		Kernel("A", 1).
		Kernel("B", 1).
		Connect("A[q] -> B[1]").
		Build()
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("want undeclared-parameter validation error, got %v", err)
	}
}

func TestBuilderClockAndModes(t *testing.T) {
	if _, err := NewGraph("t").Clock("CLK", 0).Build(); err == nil {
		t.Error("zero-period clock should fail")
	}
	if _, err := NewGraph("t").Modes("NOPE", ModeWaitAll).Kernel("A", 1).Build(); err == nil {
		t.Error("Modes on unknown node should fail")
	}
}
