package tpdf

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/tpdf/obs"
)

// Simulate executes the graph token-accurately in virtual time and reports
// firings, completion time and per-channel buffer high-water marks.
// Relevant options: WithParams, WithIterations, WithProcessors,
// WithDecisions, WithContext, WithTrace, WithRecord, WithMaxEvents,
// WithMetrics (event counters published to the registry after the run).
func Simulate(g *Graph, opts ...Option) (*SimResult, error) {
	cfg := buildConfig(opts)
	sc := sim.Config{
		Graph:      g,
		Context:    cfg.ctx,
		Env:        cfg.env(),
		Iterations: cfg.iterations,
		Processors: cfg.processors,
		Decide:     cfg.decide,
		OnFire:     cfg.onFire,
		Record:     cfg.record,
		MaxEvents:  cfg.maxEvents,
	}
	if cfg.metrics == nil {
		return sim.Run(sc)
	}
	s, err := sim.NewSimulator(sc)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	ctr := s.Counters()
	snap := obs.SimSnapshot{
		Runs:          ctr.Runs,
		Events:        ctr.Events,
		Firings:       ctr.Firings,
		ClockTicks:    ctr.ClockTicks,
		MaxEventQueue: ctr.MaxEventQueue,
	}
	if res != nil {
		snap.VirtualTime = res.Time
	}
	cfg.metrics.UpdateSim(snap)
	return res, err
}

// Execute runs the graph at the payload level: behaviors map node names to
// firing functions that consume and produce real values, fired one at a
// time down a sequential schedule. Relevant options: WithParams,
// WithIterations, WithContext. See Stream for the concurrent counterpart.
func Execute(g *Graph, behaviors map[string]Behavior, opts ...Option) (*ExecResult, error) {
	cfg := buildConfig(opts)
	return runner.Run(runner.Config{
		Graph:      g,
		Env:        cfg.env(),
		Context:    cfg.ctx,
		Behaviors:  behaviors,
		Iterations: cfg.iterations,
	})
}

// ScheduleItem is one scheduled firing of the canonical period.
type ScheduleItem struct {
	// Actor is the actor name; Firing its 1-based ordinal within the
	// period (A1, A2, ... in the paper's notation).
	Actor  string
	Firing int64
	PE     int
	Start  int64
	End    int64
}

// ScheduleResult is a verified static schedule of one canonical period.
type ScheduleResult struct {
	// Firings is the canonical period length; RepetitionVector the
	// concrete q it expands.
	Firings          int
	RepetitionVector []int64
	Items            []ScheduleItem
	Makespan         int64
	Utilization      float64
	// CriticalPath is the precedence-graph lower bound on any schedule
	// (0 when unavailable); MCR the steady-state period bound from the
	// maximum cycle ratio (0 when unavailable).
	CriticalPath int64
	MCR          float64
}

// Gantt renders the schedule as an ASCII Gantt chart of the given width.
func (r *ScheduleResult) Gantt(width int) string {
	items := make([]trace.GanttItem, len(r.Items))
	for i, it := range r.Items {
		items[i] = trace.GanttItem{
			Lane:  it.PE,
			Label: fmt.Sprintf("%s%d", it.Actor, it.Firing),
			Start: it.Start,
			End:   it.End,
		}
	}
	return trace.Gantt(items, width)
}

// Schedule builds the canonical period of the graph (§III-D) and
// list-schedules it with the control-priority rule onto the target
// platform, verifying the result against the precedence constraints.
// Relevant options: WithParams, WithPlatform, WithProcessors,
// WithoutControlPriority.
func Schedule(g *Graph, opts ...Option) (*ScheduleResult, error) {
	cfg := buildConfig(opts)
	plat := cfg.platform
	if plat == nil {
		n := cfg.processors
		if n <= 0 {
			n = 8
		}
		plat = platform.Simple(n)
	}

	cg, low, err := g.Instantiate(cfg.env())
	if err != nil {
		return nil, err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return nil, err
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		return nil, err
	}
	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == core.KindControl {
			isCtl[low.ActorOf[id]] = true
		}
	}
	sopts := sched.Options{
		Platform:        plat,
		PEs:             cfg.processors,
		ControlPriority: cfg.controlPriority,
		IsControl:       isCtl,
	}
	res, err := sched.ListSchedule(cg, prec, sopts)
	if err != nil {
		return nil, err
	}
	if err := sched.Verify(cg, prec, sopts, res); err != nil {
		return nil, fmt.Errorf("tpdf: schedule failed verification: %v", err)
	}

	out := &ScheduleResult{
		Firings:          prec.N(),
		RepetitionVector: sol.Q,
		Makespan:         res.Makespan,
		Utilization:      res.Utilization(),
		Items:            make([]ScheduleItem, len(res.Items)),
	}
	for u := range res.Items {
		f := prec.Firings[u]
		out.Items[u] = ScheduleItem{
			Actor:  cg.Actors[f.Actor].Name,
			Firing: f.K + 1,
			PE:     res.Items[u].PE,
			Start:  res.Items[u].Start,
			End:    res.Items[u].End,
		}
	}
	if cp, _, err := prec.CriticalPath(cg); err == nil {
		out.CriticalPath = cp
	}
	if mcr, err := cg.MaxCycleRatio(sol, 1e-6); err == nil {
		out.MCR = mcr
	}
	return out, nil
}

// GenerateCode emits quasi-static Go scheduling code for the graph
// (WithParams selects the instantiation).
func GenerateCode(g *Graph, opts ...Option) (string, error) {
	cfg := buildConfig(opts)
	return codegen.Generate(g, codegen.Options{Env: cfg.env()})
}

// MinimalBuffers searches the smallest per-edge capacities under which the
// configured run still completes (deadlock-free), a per-edge refinement of
// Report.BufferBound. WithParallelism fans the feasibility probes of the
// per-edge binary search out over pooled simulators (the result is
// identical whatever the worker count). Other options as for Simulate.
func MinimalBuffers(g *Graph, opts ...Option) ([]int64, error) {
	cfg := buildConfig(opts)
	return sim.MinimalCapacitiesParallel(sim.Config{
		Graph:      g,
		Context:    cfg.ctx,
		Env:        cfg.env(),
		Iterations: cfg.iterations,
		Processors: cfg.processors,
		Decide:     cfg.decide,
		MaxEvents:  cfg.maxEvents,
	}, cfg.parallel)
}

// IterationPeriod measures the steady-state iteration period of the
// configured run: iterations warm+span are simulated and the per-iteration
// completion-time slope over the last span iterations returned. Options as
// for Simulate.
func IterationPeriod(g *Graph, warm, span int64, opts ...Option) (float64, error) {
	cfg := buildConfig(opts)
	return sim.IterationPeriod(sim.Config{
		Graph:      g,
		Context:    cfg.ctx,
		Env:        cfg.env(),
		Processors: cfg.processors,
		Decide:     cfg.decide,
		MaxEvents:  cfg.maxEvents,
	}, warm, span)
}
