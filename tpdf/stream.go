package tpdf

import (
	"repro/internal/engine"
)

// Stream runs the graph at the payload level like Execute, but
// concurrently: one goroutine per actor, edges wired as bounded Go
// channels sized from the analysis buffer bounds, backpressure from
// channel capacity, and parameter reconfiguration applied only at
// transaction (iteration) boundaries. For any graph Execute completes,
// Stream produces the identical result — same Firings, same Remaining
// payloads in the same FIFO order — the pipeline just overlaps the
// behaviors' latencies instead of serializing them.
//
// Relevant options: WithParams, WithIterations, WithContext, WithWorkers,
// WithChannelCapacity, WithReconfigure.
func Stream(g *Graph, behaviors map[string]Behavior, opts ...Option) (*ExecResult, error) {
	cfg := buildConfig(opts)
	return engine.Run(engine.Config{
		Graph:       g,
		Env:         cfg.env(),
		Behaviors:   behaviors,
		Iterations:  cfg.iterations,
		Context:     cfg.ctx,
		Workers:     cfg.workers,
		Capacity:    cfg.channelCap,
		Reconfigure: cfg.reconfigure,
	})
}
