package tpdf

import (
	"repro/internal/engine"
)

// Stream runs the graph at the payload level like Execute, but
// concurrently: one persistent goroutine per actor, edges wired as
// single-producer/single-consumer ring buffers sized from the analysis
// buffer bounds (a whole firing's token batch moves per synchronization),
// backpressure from ring capacity, and parameter reconfiguration applied
// only at transaction (iteration) boundaries via an in-place rebind of the
// compiled graph. For any graph Execute completes, Stream produces the
// identical result — same Firings, same Remaining payloads in the same
// FIFO order — the pipeline just overlaps the behaviors' latencies instead
// of serializing them. The warm firing path performs no heap allocations;
// in exchange, payload slices handed to behaviors are valid only for the
// duration of the firing (keep the values, not the slices).
//
// Relevant options: WithParams, WithIterations, WithContext, WithWorkers,
// WithChannelCapacity, WithReconfigure, WithBarrier, WithCompiled,
// WithStallTimeout, WithMetrics, WithTraceJournal.
func Stream(g *Graph, behaviors map[string]Behavior, opts ...Option) (*ExecResult, error) {
	cfg := buildConfig(opts)
	sink := cfg.checkpointSink
	if p := cfg.persister; p != nil {
		// Durable persistence taps the checkpoint stream: entry captures
		// are offered to the background writer, and the user's sink (if
		// any) still sees every capture first.
		user := sink
		sink = func(ck *Checkpoint) {
			if user != nil {
				user(ck)
			}
			if ck.AtEntry {
				p.Offer(ck)
			}
		}
	}
	ec := engine.Config{
		Graph:        g,
		Env:          cfg.env(),
		Behaviors:    behaviors,
		Iterations:   cfg.iterations,
		Context:      cfg.ctx,
		Workers:      cfg.workers,
		Capacity:     cfg.channelCap,
		Reconfigure:  cfg.reconfigure,
		Barrier:      cfg.barrier,
		StallTimeout: cfg.stallTimeout,
		Metrics:      cfg.metrics,
		Journal:      cfg.journal,

		Checkpoint:     cfg.checkpoint,
		CheckpointSink: sink,
		CaptureAtEntry: cfg.captureAtEntry,
		Resume:         cfg.resume,
		PanicRetries:   cfg.panicRetries,
		ValidateRebind: cfg.validateRebind,
		OnRebindAbort:  cfg.onRebindAbort,
		SnapshotUser:   cfg.snapshotUser,
		RestoreUser:    cfg.restoreUser,
		Faults:         cfg.faults,
	}
	if cfg.compiled != nil {
		ec.Skeleton = cfg.compiled.sk
	}
	return engine.Run(ec)
}
