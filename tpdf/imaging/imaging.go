// Package imaging is the public face of the image substrate backing the
// edge-detection and motion-estimation case studies: grayscale images, the
// four real edge detectors of the Fig. 6 table, PGM I/O and block-matching
// motion search.
package imaging

import (
	"io"

	"repro/internal/imaging"
)

type (
	// Image is a grayscale raster.
	Image = imaging.Image
	// Detector is a named edge detector.
	Detector = imaging.Detector
	// MotionVector is one block's displacement with its matching cost.
	MotionVector = imaging.MotionVector
)

// New allocates a w×h image.
func New(w, h int) *Image { return imaging.New(w, h) }

// Synthetic renders the deterministic test scene used by the benchmarks.
func Synthetic(w, h int, seed uint64) *Image { return imaging.Synthetic(w, h, seed) }

// Detectors returns the four detectors of the paper's Fig. 6 table
// (QMask, Sobel, Prewitt, Canny).
func Detectors() []Detector { return imaging.Detectors() }

// QuickMask runs the fast quick-mask detector.
func QuickMask(im *Image) *Image { return imaging.QuickMask(im) }

// Sobel runs the Sobel gradient detector.
func Sobel(im *Image) *Image { return imaging.Sobel(im) }

// Prewitt runs the Prewitt gradient detector.
func Prewitt(im *Image) *Image { return imaging.Prewitt(im) }

// Canny runs the Canny detector with the given hysteresis thresholds.
func Canny(im *Image, low, high int) *Image { return imaging.Canny(im, low, high) }

// EdgeDensity is the fraction of pixels above the threshold.
func EdgeDensity(im *Image, threshold uint8) float64 {
	return imaging.EdgeDensity(im, threshold)
}

// WritePGM and ReadPGM serialize images in the portable graymap format.
func WritePGM(w io.Writer, im *Image) error { return imaging.WritePGM(w, im) }

// ReadPGM parses a portable graymap.
func ReadPGM(r io.Reader) (*Image, error) { return imaging.ReadPGM(r) }

// FullSearch exhaustively searches a block's best motion vector.
func FullSearch(cur, ref *Image, bx, by, size, radius int) MotionVector {
	return imaging.FullSearch(cur, ref, bx, by, size, radius)
}

// ThreeStepSearch runs the logarithmic three-step search heuristic.
func ThreeStepSearch(cur, ref *Image, bx, by, size, radius int) MotionVector {
	return imaging.ThreeStepSearch(cur, ref, bx, by, size, radius)
}
