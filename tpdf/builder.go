package tpdf

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// GraphBuilder constructs a TPDF graph fluently. Every method records its
// error instead of returning it, so a whole topology can be declared in one
// chain and checked once at Build:
//
//	g, err := tpdf.NewGraph("pipeline").
//		Param("p", 4, 1, 64).
//		Kernel("A", 1).
//		Kernel("B", 2).
//		Connect("A[p] -> B[1]").
//		Build()
//
// Edge specs are "SRC[rates] -> DST[rates]" for data channels and
// "CTL[rates] => DST" for control channels (the kernel's control port is
// created on demand). Rates are cyclo-static sequences of symbolic
// expressions, e.g. "1", "p", "2,0,1" or "beta*(N+L)". Two options may
// follow the destination: "init=N" places N initial tokens on the channel
// and "prio=N" sets the consumer port's priority (the α function used by
// highest-priority modes).
type GraphBuilder struct {
	g    *core.Graph
	errs []error
}

// NewGraph starts building a graph with the given name.
func NewGraph(name string) *GraphBuilder {
	return &GraphBuilder{g: core.NewGraph(name)}
}

func (b *GraphBuilder) errf(format string, args ...any) *GraphBuilder {
	b.errs = append(b.errs, fmt.Errorf("tpdf: "+format, args...))
	return b
}

func (b *GraphBuilder) addNode(name string, add func() NodeID) *GraphBuilder {
	if name == "" {
		return b.errf("empty node name")
	}
	if _, dup := b.g.NodeByName(name); dup {
		return b.errf("duplicate node %q", name)
	}
	add()
	return b
}

// Param declares an integer parameter with its default and legal range.
// Zero min/max mean "unbounded below/above 1".
func (b *GraphBuilder) Param(name string, def, min, max int64) *GraphBuilder {
	for _, p := range b.g.Params {
		if p.Name == name {
			return b.errf("duplicate parameter %q", name)
		}
	}
	b.g.AddParam(name, def, min, max)
	return b
}

// Kernel adds a computation kernel with the given cyclic execution-time
// sequence.
func (b *GraphBuilder) Kernel(name string, exec ...int64) *GraphBuilder {
	return b.addNode(name, func() NodeID { return b.g.AddKernel(name, exec...) })
}

// ControlActor adds a plain control actor.
func (b *GraphBuilder) ControlActor(name string, exec ...int64) *GraphBuilder {
	return b.addNode(name, func() NodeID { return b.g.AddControlActor(name, exec...) })
}

// Clock adds a clock control actor: a watchdog timer emitting control
// tokens each time its period elapses.
func (b *GraphBuilder) Clock(name string, period int64) *GraphBuilder {
	if period <= 0 {
		return b.errf("clock %q needs a positive period, got %d", name, period)
	}
	return b.addNode(name, func() NodeID { return b.g.AddClock(name, period) })
}

// SelectDuplicate adds a Select-duplicate kernel (§II-B a): one input, n
// outputs, each token copied to every currently enabled output.
func (b *GraphBuilder) SelectDuplicate(name string, exec ...int64) *GraphBuilder {
	return b.addNode(name, func() NodeID { return b.g.AddSelectDuplicate(name, exec...) })
}

// Transaction adds a Transaction kernel (§II-B b): n inputs, one output,
// atomically selecting tokens from one or several inputs.
func (b *GraphBuilder) Transaction(name string, exec ...int64) *GraphBuilder {
	return b.addNode(name, func() NodeID { return b.g.AddTransaction(name, exec...) })
}

// Modes replaces the mode set a control token may select on the kernel.
func (b *GraphBuilder) Modes(name string, modes ...Mode) *GraphBuilder {
	id, ok := b.g.NodeByName(name)
	if !ok {
		return b.errf("Modes: unknown node %q", name)
	}
	b.g.SetModes(id, modes...)
	return b
}

// Connect wires an edge described by a textual spec (see the type comment
// for the grammar).
func (b *GraphBuilder) Connect(spec string) *GraphBuilder {
	e, err := parseEdgeSpec(spec)
	if err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	src, ok := b.g.NodeByName(e.src)
	if !ok {
		return b.errf("edge %q: unknown source node %q", spec, e.src)
	}
	dst, ok := b.g.NodeByName(e.dst)
	if !ok {
		return b.errf("edge %q: unknown destination node %q", spec, e.dst)
	}
	if e.control {
		if _, err := b.g.ConnectControl(src, "["+e.srcRates+"]", dst, e.initial); err != nil {
			return b.errf("edge %q: %v", spec, err)
		}
		return b
	}
	if _, err := b.g.ConnectPriority(src, "["+e.srcRates+"]", dst, "["+e.dstRates+"]", e.initial, e.priority); err != nil {
		return b.errf("edge %q: %v", spec, err)
	}
	return b
}

// Build finishes the graph: it returns the accumulated declaration errors
// joined together, or the structural validation error, or the graph.
func (b *GraphBuilder) Build() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build for tests and program-literal graphs; it panics on
// error.
func (b *GraphBuilder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// edgeSpec is the parsed form of one Connect string.
type edgeSpec struct {
	src, dst           string
	srcRates, dstRates string
	control            bool
	initial            int64
	priority           int
}

// parseEdgeSpec parses "SRC[rates] -> DST[rates] [init=N] [prio=N]" or
// "CTL[rates] => DST [init=N]". The arrow is found at bracket depth 0 so
// rate expressions may contain anything but brackets.
func parseEdgeSpec(spec string) (edgeSpec, error) {
	var e edgeSpec
	arrow := -1
	depth := 0
	for i := 0; i < len(spec)-1; i++ {
		switch spec[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '-', '=':
			if depth == 0 && spec[i+1] == '>' {
				arrow = i
			}
		}
		if arrow >= 0 {
			break
		}
	}
	if arrow < 0 {
		return e, fmt.Errorf("tpdf: edge %q: missing \"->\" or \"=>\"", spec)
	}
	e.control = spec[arrow] == '='

	var err error
	e.src, e.srcRates, err = parseEndpoint(spec, spec[:arrow], true)
	if err != nil {
		return e, err
	}

	tail := strings.TrimSpace(spec[arrow+2:])
	if tail == "" {
		return e, fmt.Errorf("tpdf: edge %q: missing destination", spec)
	}
	dstPart, optPart := tail, ""
	if close := strings.IndexByte(tail, ']'); close >= 0 {
		dstPart, optPart = tail[:close+1], tail[close+1:]
	} else if sp := strings.IndexAny(tail, " \t"); sp >= 0 {
		dstPart, optPart = tail[:sp], tail[sp:]
	}
	e.dst, e.dstRates, err = parseEndpoint(spec, dstPart, !e.control)
	if err != nil {
		return e, err
	}
	if e.control && e.dstRates != "" {
		return e, fmt.Errorf("tpdf: edge %q: control destinations take no rates (the control port consumes 1)", spec)
	}

	for _, opt := range strings.Fields(optPart) {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return e, fmt.Errorf("tpdf: edge %q: bad option %q (want init=N or prio=N)", spec, opt)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return e, fmt.Errorf("tpdf: edge %q: option %q: %v", spec, opt, err)
		}
		switch key {
		case "init":
			e.initial = n
		case "prio":
			if e.control {
				return e, fmt.Errorf("tpdf: edge %q: prio applies to data edges only", spec)
			}
			e.priority = int(n)
		default:
			return e, fmt.Errorf("tpdf: edge %q: unknown option %q", spec, key)
		}
	}
	return e, nil
}

// parseEndpoint splits "NAME[rates]" (rates required iff needRates).
func parseEndpoint(spec, s string, needRates bool) (name, rates string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '[')
	if open < 0 {
		if needRates {
			return "", "", fmt.Errorf("tpdf: edge %q: endpoint %q needs a rate list like %q", spec, s, s+"[1]")
		}
		if s == "" {
			return "", "", fmt.Errorf("tpdf: edge %q: empty endpoint", spec)
		}
		return s, "", nil
	}
	if !strings.HasSuffix(s, "]") {
		return "", "", fmt.Errorf("tpdf: edge %q: unterminated rate list in %q", spec, s)
	}
	name = strings.TrimSpace(s[:open])
	if name == "" {
		return "", "", fmt.Errorf("tpdf: edge %q: endpoint %q has no node name", spec, s)
	}
	rates = s[open+1 : len(s)-1]
	if strings.TrimSpace(rates) == "" {
		return "", "", fmt.Errorf("tpdf: edge %q: empty rate list in %q", spec, s)
	}
	return name, rates, nil
}
