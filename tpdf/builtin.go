package tpdf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
)

// Scenario bundles a built-in application graph with its paper-default
// control decisions (nil when the graph needs none: every control actor
// then defaults to wait-all).
type Scenario struct {
	Graph  *Graph
	Decide map[string]DecideFunc
}

// builtins is the registry behind Builtin: every application graph the
// repository ships, keyed by the name the CLIs and graphs/*.tpdf use.
// Each constructor takes the parameter overrides a caller passed via
// BuiltinScenario (semantics per entry, e.g. "beta" for ofdm, "deadline"
// for edge).
var builtins = map[string]func(params map[string]int64) (*Scenario, error){
	"fig2":  plainBuiltin(apps.Fig2),
	"fig4a": plainBuiltin(apps.Fig4a),
	"fig4b": plainBuiltin(apps.Fig4b),
	"ofdm": func(params map[string]int64) (*Scenario, error) {
		p := ofdmParams(params)
		g := apps.OFDMTPDF(p)
		decide, err := apps.OFDMDecide(g, p.M)
		if err != nil {
			return nil, err
		}
		return &Scenario{Graph: g, Decide: decide}, nil
	},
	"ofdm-csdf": func(params map[string]int64) (*Scenario, error) {
		return &Scenario{Graph: apps.OFDMCSDF(ofdmParams(params))}, nil
	},
	"edge": func(params map[string]int64) (*Scenario, error) {
		app := apps.EdgeDetection(paramOr(params, "deadline", 500), nil)
		return &Scenario{Graph: app.Graph, Decide: app.DeadlineDecide()}, nil
	},
	"fmradio": func(params map[string]int64) (*Scenario, error) {
		g := apps.FMRadioTPDF()
		decide, err := apps.FMRadioSelectBand(g, int(paramOr(params, "band", 1)))
		if err != nil {
			return nil, err
		}
		return &Scenario{Graph: g, Decide: decide}, nil
	},
	"fmradio-csdf": plainBuiltin(apps.FMRadioCSDF),
	"vc1":          plainBuiltin(apps.VC1Decoder),
	"avc-me": func(params map[string]int64) (*Scenario, error) {
		app := apps.MotionEstimation(
			paramOr(params, "deadline", 500),
			paramOr(params, "full", 60),
			paramOr(params, "tss", 15))
		return &Scenario{Graph: app.Graph, Decide: app.DeadlineDecide()}, nil
	},
}

func plainBuiltin(build func() *Graph) func(map[string]int64) (*Scenario, error) {
	return func(map[string]int64) (*Scenario, error) {
		return &Scenario{Graph: build()}, nil
	}
}

func paramOr(params map[string]int64, name string, def int64) int64 {
	if v, ok := params[name]; ok {
		return v
	}
	return def
}

func ofdmParams(params map[string]int64) apps.OFDMParams {
	p := apps.DefaultOFDM()
	p.Beta = paramOr(params, "beta", p.Beta)
	p.M = paramOr(params, "M", p.M)
	p.N = paramOr(params, "N", p.N)
	p.L = paramOr(params, "L", p.L)
	return p
}

// Builtin returns one of the repository's application graphs by name, with
// its default parameters. BuiltinNames lists the legal names.
func Builtin(name string) (*Graph, error) {
	s, err := BuiltinScenario(name, nil)
	if err != nil {
		return nil, err
	}
	return s.Graph, nil
}

// BuiltinScenario returns a built-in graph together with its paper-default
// control decisions, constructed under the given parameter overrides
// (graph parameters like "beta", and scenario knobs like the edge
// detector's "deadline" or the FM radio's "band").
func BuiltinScenario(name string, params map[string]int64) (*Scenario, error) {
	build, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("tpdf: unknown builtin %q (try %s)", name, strings.Join(BuiltinNames(), ", "))
	}
	return build(params)
}

// BuiltinNames returns the sorted names of every built-in graph.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
