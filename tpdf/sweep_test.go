package tpdf_test

import (
	"reflect"
	"testing"

	"repro/tpdf"
)

func TestGridOrderAndSize(t *testing.T) {
	grid := tpdf.Grid(map[string][]int64{
		"beta": {1, 2, 3},
		"N":    {16, 32},
	})
	if len(grid) != 6 {
		t.Fatalf("grid has %d points, want 6", len(grid))
	}
	// Sorted axis names (N before beta), last axis fastest.
	want := []map[string]int64{
		{"N": 16, "beta": 1}, {"N": 16, "beta": 2}, {"N": 16, "beta": 3},
		{"N": 32, "beta": 1}, {"N": 32, "beta": 2}, {"N": 32, "beta": 3},
	}
	if !reflect.DeepEqual(grid, want) {
		t.Fatalf("grid order %v, want %v", grid, want)
	}
	if pts := tpdf.Grid(map[string][]int64{"beta": {}}); pts != nil {
		t.Fatalf("empty axis must yield nil grid, got %v", pts)
	}
}

// TestSweepParallelIdentical runs the OFDM buffer sweep through the public
// Sweep API and checks the parallel results equal the sequential ones in
// value and order.
func TestSweepParallelIdentical(t *testing.T) {
	g, err := tpdf.Builtin("ofdm")
	if err != nil {
		t.Fatal(err)
	}
	grid := tpdf.Grid(map[string][]int64{"beta": {1, 2, 4}, "N": {8, 16}})
	seq, err := tpdf.Sweep(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(grid) {
		t.Fatalf("%d points for %d grid entries", len(seq), len(grid))
	}
	for i, pt := range seq {
		if pt.TotalBuffer <= 0 || pt.Params["beta"] != grid[i]["beta"] {
			t.Fatalf("point %d malformed: %+v", i, pt)
		}
	}
	par, err := tpdf.Sweep(g, grid, tpdf.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel sweep diverged from sequential")
	}
}

// TestAnalyzeParallelIdentical checks WithParallelism leaves the analysis
// report unchanged (probes are fanned out, verdicts reduced in order).
func TestAnalyzeParallelIdentical(t *testing.T) {
	g, err := tpdf.Builtin("fig2")
	if err != nil {
		t.Fatal(err)
	}
	seq := tpdf.Analyze(g)
	par := tpdf.Analyze(g, tpdf.WithParallelism(8))
	if seq.String() != par.String() {
		t.Fatalf("parallel analysis diverged:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
}

// TestMinimalBuffersParallelIdentical checks the parallel feasibility
// probes leave MinimalBuffers' result unchanged.
func TestMinimalBuffersParallelIdentical(t *testing.T) {
	g, err := tpdf.Builtin("fig2")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := tpdf.MinimalBuffers(g)
	if err != nil {
		t.Fatal(err)
	}
	par, err := tpdf.MinimalBuffers(g, tpdf.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel MinimalBuffers %v, want %v", par, seq)
	}
}
