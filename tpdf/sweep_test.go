package tpdf_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/symb"
	"repro/tpdf"
)

func TestGridOrderAndSize(t *testing.T) {
	grid, err := tpdf.Grid(map[string][]int64{
		"beta": {1, 2, 3},
		"N":    {16, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 6 {
		t.Fatalf("grid has %d points, want 6", len(grid))
	}
	// Sorted axis names (N before beta), last axis fastest.
	want := []map[string]int64{
		{"N": 16, "beta": 1}, {"N": 16, "beta": 2}, {"N": 16, "beta": 3},
		{"N": 32, "beta": 1}, {"N": 32, "beta": 2}, {"N": 32, "beta": 3},
	}
	if !reflect.DeepEqual(grid, want) {
		t.Fatalf("grid order %v, want %v", grid, want)
	}
	if pts, err := tpdf.Grid(map[string][]int64{"beta": {}}); err != nil || pts != nil {
		t.Fatalf("empty axis must yield nil grid, got %v (err %v)", pts, err)
	}
}

// TestGridOverflowRejected feeds axes whose cartesian product is
// oversized — both int-overflowing and merely unallocatable — and demands
// an explicit error instead of a mis-sized slice or a fatal OOM.
func TestGridOverflowRejected(t *testing.T) {
	axis := make([]int64, 1<<16)
	overflow := map[string][]int64{}
	for _, n := range []string{"a", "b", "c", "d", "e"} { // (2^16)^5 = 2^80
		overflow[n] = axis
	}
	if _, err := tpdf.Grid(overflow); err == nil {
		t.Fatal("int-overflowing grid must be rejected")
	}
	// 2^40 points fits in an int but would demand terabytes before the
	// first simulation; MaxGridPoints turns it into an error.
	huge := map[string][]int64{
		"a": make([]int64, 1<<14), "b": make([]int64, 1<<14), "c": make([]int64, 1<<12),
	}
	if _, err := tpdf.Grid(huge); err == nil {
		t.Fatal("unallocatable grid must be rejected")
	}
}

// TestSweepParallelIdentical runs the OFDM buffer sweep through the public
// Sweep API and checks the parallel results equal the sequential ones in
// value and order.
func TestSweepParallelIdentical(t *testing.T) {
	g, err := tpdf.Builtin("ofdm")
	if err != nil {
		t.Fatal(err)
	}
	grid, err := tpdf.Grid(map[string][]int64{"beta": {1, 2, 4}, "N": {8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := tpdf.Sweep(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(grid) {
		t.Fatalf("%d points for %d grid entries", len(seq), len(grid))
	}
	for i, pt := range seq {
		if pt.TotalBuffer <= 0 || pt.Params["beta"] != grid[i]["beta"] {
			t.Fatalf("point %d malformed: %+v", i, pt)
		}
	}
	par, err := tpdf.Sweep(g, grid, tpdf.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel sweep diverged from sequential")
	}
}

// TestAnalyzeParallelIdentical checks WithParallelism leaves the analysis
// report unchanged (probes are fanned out, verdicts reduced in order).
func TestAnalyzeParallelIdentical(t *testing.T) {
	g, err := tpdf.Builtin("fig2")
	if err != nil {
		t.Fatal(err)
	}
	seq := tpdf.Analyze(g)
	par := tpdf.Analyze(g, tpdf.WithParallelism(8))
	if seq.String() != par.String() {
		t.Fatalf("parallel analysis diverged:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
}

// TestMinimalBuffersParallelIdentical checks the parallel feasibility
// probes leave MinimalBuffers' result unchanged.
func TestMinimalBuffersParallelIdentical(t *testing.T) {
	g, err := tpdf.Builtin("fig2")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := tpdf.MinimalBuffers(g)
	if err != nil {
		t.Fatal(err)
	}
	par, err := tpdf.MinimalBuffers(g, tpdf.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel MinimalBuffers %v, want %v", par, seq)
	}
}

// TestSweepMatchesOneShotSimulation verifies the compiled rebind sweep
// returns exactly what a fresh instantiate-and-simulate per point (the
// pre-compile-layer driver) produces.
func TestSweepMatchesOneShotSimulation(t *testing.T) {
	s, err := tpdf.BuiltinScenario("ofdm", nil)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := tpdf.Grid(map[string][]int64{"beta": {1, 3}, "N": {8, 32}})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := tpdf.Sweep(s.Graph, grid, tpdf.WithDecisions(s.Decide))
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		res, err := sim.Run(sim.Config{
			Graph:       s.Graph,
			Env:         symb.Env(grid[i]),
			Decide:      s.Decide,
			BuffersOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if pt.Time != res.Time || pt.TotalBuffer != res.TotalBuffer() ||
			!reflect.DeepEqual(pt.HighWater, res.HighWater) ||
			!reflect.DeepEqual(pt.Final, res.Final) ||
			!reflect.DeepEqual(pt.Firings, res.Firings) {
			t.Fatalf("point %d (%v): sweep diverged from one-shot simulation", i, grid[i])
		}
	}
}

// TestSweepCancellation cancels a sweep mid-grid and demands a clean
// context error: no partial garbage, no hang, and the error surfaces
// whichever way the cancellation lands (between points or inside a run).
func TestSweepCancellation(t *testing.T) {
	g, err := tpdf.Builtin("ofdm")
	if err != nil {
		t.Fatal(err)
	}
	grid, err := tpdf.Grid(map[string][]int64{"beta": {1, 2, 3, 4, 5, 6, 7, 8}, "N": {16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the sweep must abort on its first point
	if _, err := tpdf.Sweep(g, grid, tpdf.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled sweep returned %v, want context.Canceled", err)
	}

	// Cancel concurrently with a parallel sweep; either the context error
	// surfaces or (if cancellation raced past completion) the sweep
	// finishes with every point intact.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { cancel2(); close(done) }()
	pts, err := tpdf.Sweep(g, grid, tpdf.WithContext(ctx2), tpdf.WithParallelism(4))
	<-done
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
		}
	} else if len(pts) != len(grid) {
		t.Fatalf("uncancelled sweep returned %d points for %d grid entries", len(pts), len(grid))
	}
}
