package tpdf

import (
	"repro/internal/apps"
	"repro/internal/buffer"
)

// Case-study applications (paper §IV-V), re-exported so scenario programs
// never touch the internals. Prefer Builtin / BuiltinScenario when the
// default construction is enough; these typed constructors expose the
// scenario knobs.
type (
	// OFDMParams configures the Fig. 7 demodulator: vectorization degree
	// Beta, demapping bits M, FFT size N, cyclic prefix L.
	OFDMParams = apps.OFDMParams
	// EdgeDetectionApp is the §IV-A deadline scenario: four detectors race
	// a Clock, a Transaction commits the best result available in time.
	EdgeDetectionApp = apps.EdgeDetectionApp
	// MotionEstimationApp is the §V AVC scenario: two motion-vector
	// searches of different quality race under a frame deadline.
	MotionEstimationApp = apps.MotionEstimationApp
	// BufferPoint is one comparison point of TPDF versus CSDF buffer
	// totals, with the paper's closed-form values.
	BufferPoint = buffer.Point
)

// PaperDetectorTimes are the per-detector execution times (ms) the paper
// measured on its i3 host (the Fig. 6 table).
var PaperDetectorTimes = apps.PaperDetectorTimes

// Fig2 builds the paper's running example (Fig. 2).
func Fig2() *Graph { return apps.Fig2() }

// Fig4a and Fig4b build the liveness examples of Fig. 4.
func Fig4a() *Graph { return apps.Fig4a() }

// Fig4b builds the cyclic variant whose late schedule is (B C C B).
func Fig4b() *Graph { return apps.Fig4b() }

// DefaultOFDM returns the configuration used for the paper's buffer plots.
func DefaultOFDM() OFDMParams { return apps.DefaultOFDM() }

// OFDMGraph builds the runtime-reconfigurable OFDM demodulator of Fig. 7.
func OFDMGraph(p OFDMParams) *Graph { return apps.OFDMTPDF(p) }

// OFDMBaseline builds the static CSDF demodulator the paper compares
// against (every branch always computed).
func OFDMBaseline(p OFDMParams) *Graph { return apps.OFDMCSDF(p) }

// OFDMDecide returns the control decision selecting the demapping branch:
// QPSK for m=2, QAM for m=4 (§IV-B's dynamic topology change).
func OFDMDecide(g *Graph, m int64) (map[string]DecideFunc, error) {
	return apps.OFDMDecide(g, m)
}

// OFDMPayloadGraph builds the single-rate pipeline shape used for
// payload-level OFDM and FM-radio demos.
func OFDMPayloadGraph() *Graph { return apps.OFDMPayloadGraph() }

// PaperTPDFBuffer and PaperCSDFBuffer are the paper's Fig. 8 closed forms
// 3 + β(12N+L) and β(17N+L).
func PaperTPDFBuffer(p OFDMParams) int64 { return apps.PaperTPDFBuffer(p) }

// PaperCSDFBuffer is the CSDF closed form β(17N+L).
func PaperCSDFBuffer(p OFDMParams) int64 { return apps.PaperCSDFBuffer(p) }

// OFDMBufferPoint simulates both demodulators at p and compares their
// buffer totals against the paper's formulas.
func OFDMBufferPoint(p OFDMParams) (BufferPoint, error) { return buffer.OFDMPoint(p) }

// OFDMBufferSweep regenerates the Fig. 8 sweep over betas and FFT sizes.
func OFDMBufferSweep(betas, ns []int64, m, l int64) ([]BufferPoint, error) {
	return buffer.OFDMSweep(betas, ns, m, l)
}

// MeanImprovement averages the TPDF-over-CSDF buffer saving of a sweep.
func MeanImprovement(points []BufferPoint) float64 { return buffer.MeanImprovement(points) }

// EdgeDetection builds the §IV-A scenario with the given deadline and
// per-detector execution times (PaperDetectorTimes when nil).
func EdgeDetection(deadlineMS int64, execMS map[string]int64) *EdgeDetectionApp {
	return apps.EdgeDetection(deadlineMS, execMS)
}

// FMRadioGraph builds the StreamIt-style radio with dynamic band selection.
func FMRadioGraph() *Graph { return apps.FMRadioTPDF() }

// FMRadioBaseline builds the CSDF radio that must compute every band.
func FMRadioBaseline() *Graph { return apps.FMRadioCSDF() }

// FMRadioSelectBand returns the control decision activating one band.
func FMRadioSelectBand(g *Graph, band int) (map[string]DecideFunc, error) {
	return apps.FMRadioSelectBand(g, band)
}

// VC1Decoder builds the §V VC-1 decoder whose prediction path is re-decided
// per frame.
func VC1Decoder() *Graph { return apps.VC1Decoder() }

// VC1FrameDecide returns the control decision routing macroblocks through
// intra prediction ("I") or motion compensation ("P").
func VC1FrameDecide(g *Graph, frameType string) (map[string]DecideFunc, error) {
	return apps.VC1FrameDecide(g, frameType)
}

// MotionEstimation builds the §V AVC motion-estimation scenario.
func MotionEstimation(deadlineMS, fullMS, tssMS int64) *MotionEstimationApp {
	return apps.MotionEstimation(deadlineMS, fullMS, tssMS)
}
