// Package tpdf is the public API of the Transaction Parameterized Dataflow
// reproduction (Do, Louise, Cohen — DATE 2016). It is the single supported
// way to use the library: everything under internal/ is an implementation
// detail.
//
// The API has four entry points:
//
//   - NewGraph returns a fluent GraphBuilder with error accumulation:
//     declare kernels, control actors and special TPDF actors, wire them
//     with textual edge specs ("A[p] -> B[1]"), and check a single error at
//     Build. Graphs can also be loaded from the textual .tpdf format with
//     Parse or LoadFile, or taken from the Builtin registry of the paper's
//     application graphs ("fig2", "ofdm", "edge", ...).
//
//   - Analyze runs the complete §III static-analysis chain — rate
//     consistency, per-control-actor rate safety, liveness by cycle
//     clustering, the Theorem 2 boundedness verdict — plus the symbolic
//     per-iteration buffer bound, and returns one consolidated Report.
//
//   - Execution comes in three tiers: Simulate executes a graph
//     token-accurately in virtual time; Execute runs it at the payload
//     level with user Behaviors, one firing at a time; Stream runs the
//     same behaviors concurrently — one goroutine per actor, bounded
//     channels, reconfiguration at transaction boundaries — with results
//     identical to Execute. Schedule list-schedules the canonical period
//     onto a many-core platform. All are configured with functional
//     options: WithParams, WithIterations, WithProcessors, WithDecisions,
//     WithContext (for cancellation of long runs), WithTrace,
//     WithPlatform, WithWorkers, WithReconfigure, ...
//
//   - The case-study constructors (OFDM, EdgeDetection, FMRadio, VC1,
//     MotionEstimation) and the experiment registry (RunExperiment)
//     reproduce the paper's graphs, tables and figures.
//
// # Observability
//
// Streaming runs carry zero-overhead instrumentation from the tpdf/obs
// package, attached with two options. WithMetrics(registry) publishes
// per-actor counters (firings, tokens moved, estimated busy/blocked time)
// and per-edge ring gauges (occupancy, high-water, capacity, grows, park
// and wake counts) into an obs.Registry. Counters are bumped with plain
// stores on cache-line-padded per-actor blocks and harvested into the
// registry only at transaction barriers, when the pipeline is quiescent —
// the warm firing path stays free of locks, atomics and allocations, and
// clock reads are sampled, so a run with metrics attached is measurably no
// slower (the tpdf-bench -metrics-overhead CI gate enforces <2%).
//
// WithTraceJournal(journal) records the run's transaction structure —
// barriers with their boundary cost, parameter rebinds with a digest of
// the new valuation, drains, stall warnings — into a bounded obs.Journal
// ring. Export it with Journal.WriteChromeTrace (load in chrome://tracing
// or Perfetto) or Journal.Summary (aligned text table). Both the registry
// and the journal are safe to read concurrently while the run is live;
// tpdf-serve holds one pair per session and serves them at GET /metrics in
// Prometheus text exposition and GET /v1/sessions/{id}/trace as a Chrome
// trace, with net/http/pprof on an opt-in admin listener. See
// ExampleStream_metrics.
//
// # Fault tolerance
//
// Streaming runs can arm transactional fault tolerance, built on the same
// quiescent barriers reconfiguration uses. WithCheckpoints(sink) captures
// a Checkpoint at every transaction barrier: per-edge ring contents in
// FIFO order, per-actor firing counters, the parameter valuation with its
// digest, and (with WithUserState) a snapshot of user behavior state.
// Rings are only snapshotted at quiescent barriers — between epochs, when
// every actor is parked and the in-flight token set is exactly the edge
// residue — so a checkpoint is always a consistent cut of the dataflow,
// never a torn mid-epoch state. Captures reuse a preallocated arena: the
// warm firing path stays allocation-free with checkpointing armed, and a
// checkpoint-armed-but-idle engine is statistically no slower than a bare
// one (the tpdf-bench -ckpt-overhead CI gate enforces <2%).
//
// A checkpoint rehydrates a fresh engine with WithResume: the resumed run
// skips the first boundary's hook and rebind (the checkpoint was taken
// after that boundary's work ran) and continues toward the WithIterations
// total, producing output byte-identical to an uninterrupted run. The
// same machinery backs in-run recovery: WithPanicRecovery(n) turns a
// panicking behavior into a transaction abort, rolls the engine back to
// the last checkpoint and retries the epoch up to n times, surfacing a
// structured *BehaviorPanicError (node, firing, stack) once the budget is
// spent. Speculative rebinds are transactional too: WithRebindValidation
// vets a proposed valuation before any engine state changes, and a
// rejected or failed rebind aborts with ErrRebindAborted, restoring the
// pre-barrier valuation — observe aborts with WithRebindAbortHandler or
// receive them as the run error. Deterministic seeded fault injection for
// tests attaches with WithFaultPlan; tpdf-serve layers session
// supervision on top — bounded-retry restart from the latest checkpoint
// with exponential backoff — and tpdf-loadgen -chaos soaks that recovery
// path in CI. See ExampleStream_checkpoint and
// ExampleStream_panicRecovery.
//
// # Durability
//
// The same consistent cuts persist across process death. OpenSnapshotStore
// opens a snapshot directory; store.Persister(id, graph, opts) returns a
// Persister that a run arms with WithDurableCheckpoints: every transaction
// entry cut is captured into a double buffer on the barrier (an
// allocation-free copy; the firing path never touches the disk) and a
// background writer encodes the newest cut — ring contents, firing
// counters, valuation, user state, plus the graph's canonical text so a
// cold process can recompile it — into a checksummed binary snapshot,
// written atomically (temp file, fsync, rename) with the newest K retained
// per session. Persister.Flush forces a synchronous write of the newest
// cut; tpdf-serve calls it before acknowledging a pump, so an acked pump
// always survives a crash — and when the flush itself fails, the pump is
// failed (serve.ErrNotDurable) rather than acked, so the client is never
// told unsynced work is durable. After a crash, store.Load(id) returns the
// newest snapshot whose checksums verify — torn files from a mid-write
// power cut are detected and skipped, falling back to the previous good
// one — and its Graph() plus Checkpoint rehydrate a fresh run via
// WithResume, byte-identical from the cut onward. tpdf-serve -data-dir
// wires this end to end: the fleet is rebuilt from disk at boot (/healthz
// answers 503 "recovering" until done), client-closed sessions delete
// their snapshots, drained ones keep them, and tpdf-loadgen -crash-record
// / -crash-verify gate the whole cycle — SIGKILL, restart, no acked work
// lost — in CI. See ExampleStream_durable.
package tpdf

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Model types, re-exported from the implementation. A Graph is purely
// structural; build one with NewGraph (the builder), Parse/LoadFile (the
// textual format) or Builtin (the registry).
type (
	// Graph is a TPDF graph (Definition 2).
	Graph = core.Graph
	// Node is a kernel or control actor.
	Node = core.Node
	// Edge is a FIFO channel between two ports.
	Edge = core.Edge
	// Port is a typed connection point with a cyclo-static rate sequence.
	Port = core.Port
	// Param is a declared integer parameter with range and default.
	Param = core.Param
	// NodeID identifies a node within its graph.
	NodeID = core.NodeID
	// EdgeID identifies an edge within its graph.
	EdgeID = core.EdgeID
	// Mode is a kernel firing mode selected by a control token.
	Mode = core.Mode
	// NodeKind separates kernels from control actors.
	NodeKind = core.NodeKind
	// PortDir distinguishes data inputs, outputs and control ports.
	PortDir = core.PortDir
)

// Firing modes (Definition 2) and node kinds.
const (
	ModeWaitAll         = core.ModeWaitAll
	ModeSelectOne       = core.ModeSelectOne
	ModeSelectMany      = core.ModeSelectMany
	ModeHighestPriority = core.ModeHighestPriority

	KindKernel  = core.KindKernel
	KindControl = core.KindControl

	In     = core.In
	Out    = core.Out
	CtlIn  = core.CtlIn
	CtlOut = core.CtlOut
)

// Runtime types, re-exported from the simulator and the payload runner.
type (
	// ControlToken is the value carried by control channels: the mode the
	// receiving kernel must fire in plus the enabled data ports.
	ControlToken = sim.ControlToken
	// DecideFunc lets a control actor choose the tokens it emits on its
	// n-th firing, keyed by control-output port name.
	DecideFunc = sim.DecideFunc
	// FireEvent describes one completed firing for tracing.
	FireEvent = sim.FireEvent
	// SimResult reports a Simulate run: virtual completion time, firings,
	// per-edge buffer high-water marks and the optional event trace.
	SimResult = sim.Result
	// Behavior is a payload-level firing function for Execute.
	Behavior = runner.Behavior
	// Firing is the payload-level firing context passed to a Behavior.
	Firing = runner.Firing
	// ExecResult reports an Execute run.
	ExecResult = runner.Result
	// Platform describes a many-core target for Schedule.
	Platform = platform.Platform
)

// MPPA256 is the Kalray MPPA-256 platform model (16 clusters × 16 PEs).
func MPPA256() *Platform { return platform.MPPA256() }

// Epiphany64 is the Adapteva Epiphany-IV platform model.
func Epiphany64() *Platform { return platform.Epiphany64() }

// SMP is a flat shared-memory platform with n identical PEs and no
// messaging cost.
func SMP(n int) *Platform { return platform.Simple(n) }

// Parse reads a graph from its textual .tpdf description.
func Parse(src string) (*Graph, error) { return graphio.Parse(src) }

// LoadFile reads and parses a .tpdf graph file.
func LoadFile(path string) (*Graph, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return graphio.Parse(string(src))
}

// Format renders a graph in the textual .tpdf format; Parse(Format(g))
// round-trips.
func Format(g *Graph) string { return graphio.Format(g) }

// DOT renders a graph in Graphviz DOT format.
func DOT(g *Graph) string { return graphio.DOT(g) }

// Table renders rows as an aligned ASCII table, as the CLI tools print it.
func Table(headers []string, rows [][]string) string { return trace.Table(headers, rows) }

// ControlOutPorts returns the control-output port names of the named
// control actor, in port order. Mode decisions passed via WithDecisions are
// keyed by these names.
func ControlOutPorts(g *Graph, actor string) ([]string, error) {
	id, ok := g.NodeByName(actor)
	if !ok {
		return nil, fmt.Errorf("tpdf: unknown node %q", actor)
	}
	var out []string
	for _, p := range g.Nodes[id].Ports {
		if p.Dir == core.CtlOut {
			out = append(out, p.Name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tpdf: node %q has no control-output ports", actor)
	}
	return out, nil
}
