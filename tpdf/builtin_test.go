package tpdf

import (
	"sort"
	"strings"
	"testing"
)

// cliNames are the graphs the CLI tools historically switch-cased; the
// registry must serve every one of them, and gen-graphs ships exactly
// BuiltinNames, so this doubles as the fixture-completeness check.
var cliNames = []string{
	"fig2", "fig4a", "fig4b", "ofdm", "ofdm-csdf",
	"edge", "fmradio", "fmradio-csdf", "vc1", "avc-me",
}

func TestBuiltinServesEveryCLIName(t *testing.T) {
	names := BuiltinNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("BuiltinNames not sorted: %v", names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range cliNames {
		if !have[n] {
			t.Errorf("registry missing CLI graph %q", n)
		}
	}
	if len(names) != len(cliNames) {
		t.Errorf("registry has %d graphs, CLIs expect %d: %v", len(names), len(cliNames), names)
	}
}

func TestBuiltinGraphsValidateAndRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames() {
		g, err := Builtin(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: validate: %v", name, err)
		}
		back, err := Parse(Format(g))
		if err != nil {
			t.Errorf("%s: textual round-trip: %v", name, err)
		} else if len(back.Nodes) != len(g.Nodes) || len(back.Edges) != len(g.Edges) {
			t.Errorf("%s: round-trip changed shape", name)
		}
	}
}

func TestBuiltinUnknownName(t *testing.T) {
	_, err := Builtin("nope")
	if err == nil || !strings.Contains(err.Error(), "fig2") {
		t.Errorf("unknown builtin should list the legal names, got %v", err)
	}
}

func TestBuiltinScenarioParams(t *testing.T) {
	// The edge scenario's deadline parameter must reach the Clock actor.
	s, err := BuiltinScenario("edge", map[string]int64{"deadline": 250})
	if err != nil {
		t.Fatal(err)
	}
	clk, ok := s.Graph.NodeByName("Clock")
	if !ok {
		t.Fatal("edge graph has no Clock")
	}
	if p := s.Graph.Nodes[clk].ClockPeriod; p != 250 {
		t.Errorf("deadline override lost: clock period %d", p)
	}
	if s.Decide == nil {
		t.Error("edge scenario should carry its deadline decisions")
	}

	// The OFDM simulation under the scenario's own decisions reproduces
	// the paper's buffer total at beta=10.
	ofdm, err := BuiltinScenario("ofdm", map[string]int64{"beta": 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ofdm.Graph, WithParam("beta", 10), WithDecisions(ofdm.Decide))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBuffer() != 61453 {
		t.Errorf("ofdm buffer %d, want 61453", res.TotalBuffer())
	}
}
