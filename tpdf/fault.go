package tpdf

import (
	"time"

	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/faultinject"
)

// Fault tolerance facade: barrier checkpoints, speculative rebind with
// rollback, and behavior-panic isolation, re-exported from the streaming
// engine. See the package documentation's "Fault tolerance" section for
// the model.

type (
	// Checkpoint is a consistent cut of a Stream run captured at a
	// quiescent transaction barrier: firing counters, ring contents in
	// FIFO order, the active parameter valuation, and optional user state.
	// Feed it back with WithResume to continue the run, or render it with
	// Checkpoint.Result.
	Checkpoint = engine.Checkpoint

	// BehaviorPanicError reports a behavior panic converted into a
	// transaction abort; Node and Firing locate the panic, Stack is the
	// panicking goroutine's stack. Test with errors.As.
	BehaviorPanicError = engine.BehaviorPanicError
)

// ErrRebindAborted reports a reconfiguration rejected at a transaction
// boundary: the rebind (or a WithRebindValidation hook) failed, and the
// engine rolled its rate state back to the pre-boundary valuation.
// Errors wrap it; test with errors.Is.
var ErrRebindAborted = engine.ErrRebindAborted

// WithCheckpoints arms barrier checkpointing on Stream: a consistent cut
// is captured at every transaction boundary (and once at run end) and
// handed to sink. The cut passed to sink is the engine's reusable arena —
// valid only during the call; keep state across calls with
// Checkpoint.CopyInto or Checkpoint.Clone. Warm captures perform no heap
// allocations, so a checkpoint-armed pipeline keeps the 0 allocs/op
// firing path. A nil sink still arms capture (useful with
// WithPanicRecovery, which rolls back to the internal arena).
func WithCheckpoints(sink func(*Checkpoint)) Option {
	return func(c *config) {
		c.checkpoint = true
		c.checkpointSink = sink
	}
}

// WithUserState attaches behavior-side state to checkpoints: snapshot is
// called at every capture barrier and its value travels in
// Checkpoint.User; restore is called on rollback and resume with that
// value. Both run on the engine's barrier goroutine while every actor is
// parked, so they may touch state the behaviors own. snapshot must return
// a self-contained value (rollback hands it back after further firings
// have mutated the live state).
func WithUserState(snapshot func() any, restore func(any)) Option {
	return func(c *config) {
		c.snapshotUser = snapshot
		c.restoreUser = restore
	}
}

// WithResume starts Stream from a checkpoint instead of from the graph's
// initial state: ring contents, firing counters, the captured valuation
// and user state are installed before the first epoch. WithIterations
// remains the total target — resuming a 100-iteration run from a
// checkpoint at 60 runs 40 more and produces a result byte-identical to
// the uninterrupted run. The checkpoint must come from the same graph
// (same name, nodes and edges); anything else fails fast.
func WithResume(ck *Checkpoint) Option {
	return func(c *config) { c.resume = ck }
}

// WithPanicRecovery arms in-run panic recovery: a behavior panic aborts
// the in-flight transaction (its partial effects are discarded) and the
// run rolls back to the last barrier checkpoint and retries, up to
// retries times across the run. Recovery implies checkpoint capture even
// without WithCheckpoints. When the budget is exhausted — or with
// retries <= 0 — the run fails with a *BehaviorPanicError.
func WithPanicRecovery(retries int) Option {
	return func(c *config) {
		c.panicRetries = retries
		if retries > 0 {
			c.checkpoint = true
		}
	}
}

// WithRebindValidation installs a predicate over proposed valuations:
// at each transaction boundary the hook sees the post-rebind environment
// (after Theorem 2's boundedness check has passed) and may reject it by
// returning an error. A rejection aborts the rebind — the engine rolls
// back to the pre-boundary valuation — and surfaces as an error wrapping
// ErrRebindAborted, fatal to the run unless WithRebindAbortHandler is
// also set.
func WithRebindValidation(fn func(params map[string]int64) error) Option {
	return func(c *config) { c.validateRebind = fn }
}

// WithRebindAbortHandler makes aborted rebinds non-fatal: when a
// reconfiguration is rejected (unbounded schedule, failed validation, or
// an injected fault), fn receives the error wrapping ErrRebindAborted and
// the run continues under the previous valuation — the transaction that
// proposed the change is discarded, not the session.
func WithRebindAbortHandler(fn func(error)) Option {
	return func(c *config) { c.onRebindAbort = fn }
}

// ErrNoSnapshot reports a session with no durable snapshot on disk —
// distinct from a session whose snapshots exist but are all corrupt, which
// surfaces as a plain error. Test with errors.Is.
var ErrNoSnapshot = durable.ErrNoSnapshot

// SnapshotStore is the durable half of fault tolerance: a directory of
// per-session checkpoint snapshots with crash-safe write discipline
// (tmp-write → fsync → rename → directory fsync), keep-last-K retention,
// and CRC-guarded torn-write detection on load. Open one, derive a
// Persister per run, and arm it with WithDurableCheckpoints; after a
// crash, Load the newest valid snapshot and resume with WithResume.
type SnapshotStore struct {
	st *durable.Store
}

// OpenSnapshotStore opens (creating if needed) a snapshot store rooted at
// dir, keeping the newest keepLast snapshots per session (clamped to 1).
func OpenSnapshotStore(dir string, keepLast int) (*SnapshotStore, error) {
	st, err := durable.Open(dir, keepLast)
	if err != nil {
		return nil, err
	}
	return &SnapshotStore{st: st}, nil
}

// IDs lists the session IDs with snapshots in the store, sorted.
func (s *SnapshotStore) IDs() ([]string, error) { return s.st.Sessions() }

// Remove deletes every snapshot held for id.
func (s *SnapshotStore) Remove(id string) error { return s.st.Remove(id) }

// DurableSnapshot is one recovered session state: the engine checkpoint
// plus the identity needed to rebuild the session around it.
type DurableSnapshot struct {
	// ID and Tenant are the session identity recorded at persist time.
	ID     string
	Tenant string
	// GraphText is the canonical graph source (Format output); parse it
	// with Graph (or Parse) and recompile before resuming.
	GraphText string
	// Checkpoint is the consistent cut to hand to WithResume.
	Checkpoint *Checkpoint
	// Discarded counts newer snapshot files skipped as torn or corrupt
	// before this one decoded cleanly — each is a crash casualty.
	Discarded int
}

// Graph parses the snapshot's recorded graph text.
func (d *DurableSnapshot) Graph() (*Graph, error) { return Parse(d.GraphText) }

// Load decodes the newest valid snapshot for id, walking backward past
// torn or corrupt files. ErrNoSnapshot when the session has none.
func (s *SnapshotStore) Load(id string) (*DurableSnapshot, error) {
	snap, discarded, err := s.st.LoadNewest(id)
	if err != nil {
		return nil, err
	}
	return &DurableSnapshot{
		ID:         snap.SessionID,
		Tenant:     snap.Tenant,
		GraphText:  snap.GraphText,
		Checkpoint: snap.Checkpoint,
		Discarded:  discarded,
	}, nil
}

// PersistInfo reports one durable snapshot write to PersistOptions.OnPersist.
type PersistInfo struct {
	// Completed is the persisted checkpoint's iteration count.
	Completed int64
	// Bytes is the encoded snapshot size (0 when the write failed).
	Bytes int
	// Dur is the persist latency: encode + write + fsync + rename.
	Dur time.Duration
	// Err is non-nil when the write failed.
	Err error
}

// PersistOptions tunes a Persister.
type PersistOptions struct {
	// Tenant is recorded in every snapshot and restored on recovery.
	Tenant string
	// Every is the persistence cadence: a background write is triggered
	// every Every-th offered checkpoint (values < 1 mean every one). The
	// newest checkpoint is always buffered regardless, so Flush persists
	// up-to-date state whatever the cadence.
	Every int
	// OnPersist, when non-nil, observes every persist attempt — the hook
	// metrics and journals hang off. Called from the writer's background
	// goroutine (or the Flush caller); must be safe for that.
	OnPersist func(PersistInfo)
}

// Persister streams one session's checkpoints to a snapshot store without
// blocking the barrier path: Offer copies into a double buffer
// (allocation-free once warm) and a background goroutine encodes and
// writes. Only the newest offered checkpoint is ever written; skipped
// intermediates are safe because every snapshot is a complete state.
type Persister struct {
	w *durable.Writer
}

// Persister returns a persister writing session id's checkpoints to the
// store. g must be the graph the session runs — its Format text is
// recorded in every snapshot so recovery can recompile it.
func (s *SnapshotStore) Persister(id string, g *Graph, po PersistOptions) (*Persister, error) {
	ss, err := s.st.Session(id)
	if err != nil {
		return nil, err
	}
	var onEv func(durable.PersistEvent)
	if po.OnPersist != nil {
		hook := po.OnPersist
		onEv = func(ev durable.PersistEvent) {
			hook(PersistInfo{Completed: ev.Completed, Bytes: ev.Bytes, Dur: ev.Dur, Err: ev.Err})
		}
	}
	return &Persister{w: durable.NewWriter(ss, id, po.Tenant, Format(g), po.Every, onEv)}, nil
}

// Offer records ck as the newest persistable cut; never blocks on I/O.
// Stream calls this for every entry capture when the persister is armed
// via WithDurableCheckpoints; call it directly only for checkpoints
// obtained some other way.
func (p *Persister) Offer(ck *Checkpoint) { p.w.Offer(ck) }

// Flush synchronously persists the newest offered checkpoint — the
// durability point an acknowledgement should wait on. With nothing
// pending it returns the last background persist's error, so a failed
// write cannot hide behind an empty flush.
func (p *Persister) Flush() error { return p.w.Flush() }

// Close flushes and stops the background writer. Safe to call twice.
func (p *Persister) Close() error { return p.w.Close() }

// WithDurableCheckpoints arms crash-consistent persistence on Stream: in
// addition to the post-hook barrier checkpoints of WithCheckpoints, the
// engine captures an *entry* cut at every transaction boundary — taken
// after the previous epoch drained but before the boundary's hook runs —
// and offers it to p. Entry cuts are what durability wants: at the moment
// a barrier hook acknowledges completed work, the entry capture covering
// that work has already been offered, so Persister.Flush before the
// acknowledgement makes it crash-safe. Resuming from an entry cut
// re-invokes that boundary's hook (its effects are not part of the cut);
// parameter changes staged by a hook but not yet applied are therefore
// not crash-durable — the hook is simply asked again.
//
// The persistence path costs the barrier an allocation-free double-buffer
// copy; encoding and fsync happen on p's background goroutine, so the
// warm firing path stays 0 allocs/op and barrier latency stays flat.
// Composes with WithCheckpoints (its sink still sees every capture, entry
// and post-hook alike) and WithUserState.
func WithDurableCheckpoints(p *Persister) Option {
	return func(c *config) {
		c.checkpoint = true
		c.captureAtEntry = true
		c.persister = p
	}
}

// WithFaultPlan injects a deterministic fault schedule into the run:
// behavior panics, firing delays and rebind rejections fire at exact
// (node, firing-index) sites from the plan. Test-only — build plans with
// internal/faultinject (explicit sites or Seeded schedules); production
// code passes nothing and pays nothing.
func WithFaultPlan(p *faultinject.Plan) Option {
	return func(c *config) { c.faults = p }
}
