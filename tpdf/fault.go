package tpdf

import (
	"repro/internal/engine"
	"repro/internal/faultinject"
)

// Fault tolerance facade: barrier checkpoints, speculative rebind with
// rollback, and behavior-panic isolation, re-exported from the streaming
// engine. See the package documentation's "Fault tolerance" section for
// the model.

type (
	// Checkpoint is a consistent cut of a Stream run captured at a
	// quiescent transaction barrier: firing counters, ring contents in
	// FIFO order, the active parameter valuation, and optional user state.
	// Feed it back with WithResume to continue the run, or render it with
	// Checkpoint.Result.
	Checkpoint = engine.Checkpoint

	// BehaviorPanicError reports a behavior panic converted into a
	// transaction abort; Node and Firing locate the panic, Stack is the
	// panicking goroutine's stack. Test with errors.As.
	BehaviorPanicError = engine.BehaviorPanicError
)

// ErrRebindAborted reports a reconfiguration rejected at a transaction
// boundary: the rebind (or a WithRebindValidation hook) failed, and the
// engine rolled its rate state back to the pre-boundary valuation.
// Errors wrap it; test with errors.Is.
var ErrRebindAborted = engine.ErrRebindAborted

// WithCheckpoints arms barrier checkpointing on Stream: a consistent cut
// is captured at every transaction boundary (and once at run end) and
// handed to sink. The cut passed to sink is the engine's reusable arena —
// valid only during the call; keep state across calls with
// Checkpoint.CopyInto or Checkpoint.Clone. Warm captures perform no heap
// allocations, so a checkpoint-armed pipeline keeps the 0 allocs/op
// firing path. A nil sink still arms capture (useful with
// WithPanicRecovery, which rolls back to the internal arena).
func WithCheckpoints(sink func(*Checkpoint)) Option {
	return func(c *config) {
		c.checkpoint = true
		c.checkpointSink = sink
	}
}

// WithUserState attaches behavior-side state to checkpoints: snapshot is
// called at every capture barrier and its value travels in
// Checkpoint.User; restore is called on rollback and resume with that
// value. Both run on the engine's barrier goroutine while every actor is
// parked, so they may touch state the behaviors own. snapshot must return
// a self-contained value (rollback hands it back after further firings
// have mutated the live state).
func WithUserState(snapshot func() any, restore func(any)) Option {
	return func(c *config) {
		c.snapshotUser = snapshot
		c.restoreUser = restore
	}
}

// WithResume starts Stream from a checkpoint instead of from the graph's
// initial state: ring contents, firing counters, the captured valuation
// and user state are installed before the first epoch. WithIterations
// remains the total target — resuming a 100-iteration run from a
// checkpoint at 60 runs 40 more and produces a result byte-identical to
// the uninterrupted run. The checkpoint must come from the same graph
// (same name, nodes and edges); anything else fails fast.
func WithResume(ck *Checkpoint) Option {
	return func(c *config) { c.resume = ck }
}

// WithPanicRecovery arms in-run panic recovery: a behavior panic aborts
// the in-flight transaction (its partial effects are discarded) and the
// run rolls back to the last barrier checkpoint and retries, up to
// retries times across the run. Recovery implies checkpoint capture even
// without WithCheckpoints. When the budget is exhausted — or with
// retries <= 0 — the run fails with a *BehaviorPanicError.
func WithPanicRecovery(retries int) Option {
	return func(c *config) {
		c.panicRetries = retries
		if retries > 0 {
			c.checkpoint = true
		}
	}
}

// WithRebindValidation installs a predicate over proposed valuations:
// at each transaction boundary the hook sees the post-rebind environment
// (after Theorem 2's boundedness check has passed) and may reject it by
// returning an error. A rejection aborts the rebind — the engine rolls
// back to the pre-boundary valuation — and surfaces as an error wrapping
// ErrRebindAborted, fatal to the run unless WithRebindAbortHandler is
// also set.
func WithRebindValidation(fn func(params map[string]int64) error) Option {
	return func(c *config) { c.validateRebind = fn }
}

// WithRebindAbortHandler makes aborted rebinds non-fatal: when a
// reconfiguration is rejected (unbounded schedule, failed validation, or
// an injected fault), fn receives the error wrapping ErrRebindAborted and
// the run continues under the previous valuation — the transaction that
// proposed the change is discarded, not the session.
func WithRebindAbortHandler(fn func(error)) Option {
	return func(c *config) { c.onRebindAbort = fn }
}

// WithFaultPlan injects a deterministic fault schedule into the run:
// behavior panics, firing delays and rebind rejections fire at exact
// (node, firing-index) sites from the plan. Test-only — build plans with
// internal/faultinject (explicit sites or Seeded schedules); production
// code passes nothing and pays nothing.
func WithFaultPlan(p *faultinject.Plan) Option {
	return func(c *config) { c.faults = p }
}
