package tpdf_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/tpdf"
)

// TestCompiledSharingMatchesFreshCompile is the program-cache correctness
// contract: for every built-in application graph, a Stream run on a shared
// CompiledGraph (the skeleton stamped per engine, compilation paid once) is
// byte-identical — same firing counts, same leftover channel contents in
// the same FIFO order — to a run that compiles privately, including when
// many engines stamp from the same skeleton concurrently (run under -race
// in CI).
func TestCompiledSharingMatchesFreshCompile(t *testing.T) {
	const engines = 4
	for _, name := range tpdf.BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			g, err := tpdf.Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := tpdf.Compile(g)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// The fresh path: Stream compiles internally, nothing shared.
			want, err := tpdf.Stream(compiled.Graph(), nil, tpdf.WithIterations(3))
			if err != nil {
				t.Fatal(err)
			}

			// The shared path: engines racing to stamp one skeleton.
			var wg sync.WaitGroup
			results := make([]*tpdf.ExecResult, engines)
			errs := make([]error, engines)
			for i := 0; i < engines; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = tpdf.Stream(compiled.Graph(), nil,
						tpdf.WithCompiled(compiled), tpdf.WithIterations(3))
				}(i)
			}
			wg.Wait()
			for i := 0; i < engines; i++ {
				if errs[i] != nil {
					t.Fatalf("shared engine %d: %v", i, errs[i])
				}
				if !reflect.DeepEqual(want.Firings, results[i].Firings) {
					t.Errorf("engine %d firings: fresh %v, shared %v", i, want.Firings, results[i].Firings)
				}
				if !reflect.DeepEqual(want.Remaining, results[i].Remaining) {
					t.Errorf("engine %d remaining: fresh %v, shared %v", i, want.Remaining, results[i].Remaining)
				}
			}
		})
	}
}

// TestCompiledSharingReconfigure extends the contract to reconfiguration:
// a parameter schedule applied at transaction boundaries must land
// identically whether the engine compiled privately or stamped from a
// shared skeleton — rebinding one engine's rates must never show through
// to its siblings.
func TestCompiledSharingReconfigure(t *testing.T) {
	g, err := tpdf.Builtin("fig2")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := tpdf.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	schedule := func(completed int64) map[string]int64 {
		return map[string]int64{"p": 1 + completed%3}
	}

	want, err := tpdf.Stream(compiled.Graph(), nil,
		tpdf.WithIterations(9), tpdf.WithReconfigure(schedule))
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent shared engines on *different* schedules: the one under
	// test plus an interferer rebinding other values against the same
	// skeleton the whole time.
	const engines = 3
	var wg sync.WaitGroup
	results := make([]*tpdf.ExecResult, engines)
	errs := make([]error, engines)
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = tpdf.Stream(compiled.Graph(), nil,
				tpdf.WithCompiled(compiled), tpdf.WithIterations(9),
				tpdf.WithReconfigure(schedule))
		}(i)
	}
	interfere := make(chan struct{})
	go func() {
		defer close(interfere)
		_, _ = tpdf.Stream(compiled.Graph(), nil,
			tpdf.WithCompiled(compiled), tpdf.WithIterations(9),
			tpdf.WithReconfigure(func(completed int64) map[string]int64 {
				return map[string]int64{"p": 8 - completed%4}
			}))
	}()
	wg.Wait()
	<-interfere

	for i := 0; i < engines; i++ {
		if errs[i] != nil {
			t.Fatalf("shared engine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(want.Firings, results[i].Firings) {
			t.Errorf("engine %d firings diverged under sharing: fresh %v, shared %v",
				i, want.Firings, results[i].Firings)
		}
		if !reflect.DeepEqual(want.Remaining, results[i].Remaining) {
			t.Errorf("engine %d remaining diverged under sharing", i)
		}
	}
}

// TestCompiledGraphRejectsForeignGraph pins the pointer-identity rule: a
// CompiledGraph may only drive runs of the exact graph value it was
// compiled from — a structurally identical duplicate must be refused, not
// silently mis-lowered.
func TestCompiledGraphRejectsForeignGraph(t *testing.T) {
	g1, err := tpdf.Builtin("fig2")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := tpdf.Builtin("fig2")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := tpdf.Compile(g1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpdf.Stream(g2, nil, tpdf.WithCompiled(compiled), tpdf.WithIterations(1)); err == nil {
		t.Fatalf("Stream accepted a compiled program from a different graph value")
	}
}
