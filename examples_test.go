package repro

// End-to-end runs of the example programs (compiled and executed via the
// toolchain). These are the repository's acceptance tests: each example
// must run to completion and print its headline result.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./examples/" + name}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs skipped in -short")
	}
	out := runExample(t, "quickstart")
	for _, frag := range []string{"bounded", "simulation", "fired"} {
		if !strings.Contains(out, frag) {
			t.Errorf("quickstart output missing %q:\n%s", frag, out)
		}
	}
}

func TestExampleOFDM(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs skipped in -short")
	}
	out := runExample(t, "ofdm")
	for _, frag := range []string{"saving 29.4%", "0 bit errors", "QPSK=0 QAM=1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("ofdm output missing %q:\n%s", frag, out)
		}
	}
}

func TestExampleVC1(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs skipped in -short")
	}
	out := runExample(t, "vc1")
	for _, frag := range []string{"decoded 8 frames", "INTRA fired 2", "MC fired 6"} {
		if !strings.Contains(out, frag) {
			t.Errorf("vc1 output missing %q:\n%s", frag, out)
		}
	}
}

func TestExampleSpeculation(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs skipped in -short")
	}
	out := runExample(t, "speculation")
	for _, frag := range []string{"masked: true", "committed QMask"} {
		if !strings.Contains(out, frag) {
			t.Errorf("speculation output missing %q:\n%s", frag, out)
		}
	}
}

func TestExampleFMRadio(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs skipped in -short")
	}
	out := runExample(t, "fmradio")
	for _, frag := range []string{"tone recovered: true", "concurrent engine: same output: true", "tokens/s", "TPDF radio"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fmradio output missing %q:\n%s", frag, out)
		}
	}
}

func TestExampleEdgeDetectSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs skipped in -short")
	}
	out := runExample(t, "edgedetect", "-size", "128")
	if !strings.Contains(out, "selected Sobel") {
		t.Errorf("edgedetect output missing paper-times selection:\n%s", out)
	}
	if !strings.Contains(out, "payload fan-out (4 frames, 4 detectors)") || !strings.Contains(out, "tokens/s") {
		t.Errorf("edgedetect output missing engine-vs-runner tokens/s measurement:\n%s", out)
	}
}
