package repro

// End-to-end integration tests: every shipped .tpdf graph file parses,
// validates, analyzes, schedules and simulates through the full pipeline,
// and the paper's headline numbers hold at integration level.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/symb"
)

func loadGraph(t *testing.T, name string) *core.Graph {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("graphs", name))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphio.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return g
}

func TestShippedGraphsFullPipeline(t *testing.T) {
	files, err := filepath.Glob("graphs/*.tpdf")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("expected >= 8 shipped graphs, found %d", len(files))
	}
	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			g := loadGraph(t, name)
			if err := g.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			rep := analysis.Analyze(g)
			if rep.Err != nil {
				t.Fatalf("analyze: %v", rep.Err)
			}
			if !rep.Bounded {
				t.Fatalf("shipped graph must be bounded:\n%s", rep)
			}

			// Schedule the canonical period on a small machine.
			cg, low, err := g.Instantiate(nil)
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			sol, err := cg.RepetitionVector()
			if err != nil {
				t.Fatal(err)
			}
			prec, err := cg.BuildPrecedence(sol, true)
			if err != nil {
				t.Fatal(err)
			}
			isCtl := make([]bool, len(cg.Actors))
			for id, n := range g.Nodes {
				if n.Kind == core.KindControl {
					isCtl[low.ActorOf[id]] = true
				}
			}
			opts := sched.Options{Platform: platform.Simple(4), ControlPriority: true, IsControl: isCtl}
			res, err := sched.ListSchedule(cg, prec, opts)
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			if err := sched.Verify(cg, prec, opts, res); err != nil {
				t.Fatalf("verify: %v", err)
			}

			// Simulate one iteration (wait-all defaults).
			simRes, err := sim.Run(sim.Config{Graph: g})
			if err != nil {
				t.Fatalf("simulate: %v", err)
			}
			if !simRes.Quiescent {
				t.Error("simulation did not quiesce")
			}
		})
	}
}

func TestHeadlineBufferResult(t *testing.T) {
	// The paper's headline: 29% buffer improvement on the OFDM demodulator.
	g := loadGraph(t, "ofdm.tpdf")
	params := apps.DefaultOFDM()
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		t.Fatal(err)
	}
	tpdfRes, err := sim.Run(sim.Config{Graph: g, Env: symb.Env(params.Env()), Decide: decide})
	if err != nil {
		t.Fatal(err)
	}
	cg := loadGraph(t, "ofdm-csdf.tpdf")
	csdfRes, err := sim.Run(sim.Config{Graph: cg, Env: symb.Env(params.Env())})
	if err != nil {
		t.Fatal(err)
	}
	if tpdfRes.TotalBuffer() != apps.PaperTPDFBuffer(params) {
		t.Errorf("TPDF buffer %d != paper %d", tpdfRes.TotalBuffer(), apps.PaperTPDFBuffer(params))
	}
	if csdfRes.TotalBuffer() != apps.PaperCSDFBuffer(params) {
		t.Errorf("CSDF buffer %d != paper %d", csdfRes.TotalBuffer(), apps.PaperCSDFBuffer(params))
	}
	imp := 1 - float64(tpdfRes.TotalBuffer())/float64(csdfRes.TotalBuffer())
	if imp < 0.28 || imp > 0.31 {
		t.Errorf("improvement %.3f, want ≈ 0.294", imp)
	}
}

func TestShippedFig2MatchesFixture(t *testing.T) {
	g := loadGraph(t, "fig2.tpdf")
	shipped := analysis.Analyze(g)
	fixture := analysis.Analyze(apps.Fig2())
	if shipped.Solution.QString() != fixture.Solution.QString() {
		t.Errorf("shipped q %s != fixture q %s",
			shipped.Solution.QString(), fixture.Solution.QString())
	}
}

func TestThroughputScalesWithProcessors(t *testing.T) {
	// Steady-state iteration period of a three-stage pipeline: with one PE
	// everything serializes (period = total work); with enough PEs the
	// bottleneck stage sets the period.
	g := core.NewGraph("tp")
	a := g.AddKernel("a", 2)
	b := g.AddKernel("b", 5)
	c := g.AddKernel("c", 3)
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[1]", c, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	serial, err := sim.IterationPeriod(sim.Config{Graph: g, Processors: 1}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sim.IterationPeriod(sim.Config{Graph: g}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 10 {
		t.Errorf("1-PE period = %g, want 10 (2+5+3)", serial)
	}
	if parallel != 5 {
		t.Errorf("unbounded period = %g, want 5 (the bottleneck stage)", parallel)
	}
}

func TestEndToEndDeadlineStory(t *testing.T) {
	// The complete §IV-A narrative at integration level: textual graph ->
	// analysis -> simulation with clock decisions -> selection.
	g := loadGraph(t, "edge.tpdf")
	rep := analysis.Analyze(g)
	if !rep.Bounded {
		t.Fatalf("edge graph not bounded:\n%s", rep)
	}
	// Rebuild decisions against the parsed graph (port names survive the
	// round trip).
	clk, ok := g.NodeByName("Clock")
	if !ok {
		t.Fatal("Clock missing from shipped graph")
	}
	var clockPort string
	for _, e := range g.Edges {
		if e.Src == clk {
			clockPort = g.Nodes[clk].Ports[e.SrcPort].Name
		}
	}
	decide := map[string]sim.DecideFunc{
		"Clock": func(int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				clockPort: {Mode: core.ModeHighestPriority},
			}
		},
	}
	res, err := sim.Run(sim.Config{Graph: g, Decide: decide, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	var selectedPort string
	for _, ev := range res.Events {
		if ev.Node == "Trans" && len(ev.Selected) == 1 {
			selectedPort = ev.Selected[0]
		}
	}
	if selectedPort == "" {
		t.Fatal("transaction never selected a result")
	}
	// Decode which detector won: must be Sobel at the 500ms deadline.
	tran, _ := g.NodeByName("Trans")
	var winner string
	for _, e := range g.Edges {
		if e.Dst == tran && g.Nodes[tran].Ports[e.DstPort].Name == selectedPort {
			winner = g.Nodes[e.Src].Name
		}
	}
	if winner != "Sobel" {
		t.Errorf("winner = %q, want Sobel", winner)
	}
	if !strings.Contains(graphio.DOT(g), "doublecircle") {
		t.Error("DOT export lost the clock")
	}
}
